"""Cloud-level behavior under injected faults.

Covers the three contracts of the fault layer:

1. A zero-fault plan attached to a cloud is value-identical to no
   injector at all (same outcomes, same stats, same byte accounting).
2. Message loss degrades service along the documented fallback ladder
   (retry -> timeout -> origin fallback -> forced delivery) with every
   step visible in the resilience counters.
3. Lost update pushes leave holders stale, and staleness is repaired --
   and counted -- on the holder's next request.
"""

import pytest

from repro.core.cloud import RequestOutcome
from repro.faults.injector import FaultInjector
from repro.faults.plan import NO_FAULTS, FaultPlan, RetryPolicy
from repro.network.transport import Transport
from tests.conftest import make_cloud


def _attach(cloud, plan, seed=None):
    injector = FaultInjector(plan, cloud.transport, seed=seed)
    cloud.attach_faults(injector)
    return injector


def _drive(cloud, steps=40):
    """A small deterministic request/update mix; returns result tuples."""
    results = []
    for i in range(steps):
        cache_id = i % len(cloud.caches)
        doc_id = (7 * i) % len(cloud.corpus)
        result = cloud.handle_request(cache_id, doc_id, now=float(i))
        results.append((result.outcome, result.latency_ms, result.served_by))
        if i % 5 == 4:
            cloud.handle_update((3 * i) % len(cloud.corpus), now=float(i))
    return results


class TestAttachValidation:
    def test_rejects_foreign_transport(self, small_corpus):
        cloud = make_cloud(small_corpus)
        injector = FaultInjector(NO_FAULTS, Transport())
        with pytest.raises(ValueError):
            cloud.attach_faults(injector)


class TestZeroPlanEquivalence:
    def test_zero_plan_matches_legacy_path_exactly(self, small_corpus):
        bare = make_cloud(small_corpus)
        faulty = make_cloud(small_corpus)
        _attach(faulty, NO_FAULTS)

        assert _drive(bare) == _drive(faulty)
        assert bare.aggregate_stats() == faulty.aggregate_stats()
        assert bare.transport.meter == faulty.transport.meter
        assert faulty.retries == 0
        assert faulty.timeouts == 0
        # A disabled plan contributes no message counters to the summary,
        # keeping zero-fault results byte-identical to fault-free runs.
        assert bare.resilience_summary() == faulty.resilience_summary()

    def test_enabled_plan_reports_message_counters(self, small_corpus):
        cloud = make_cloud(small_corpus)
        _attach(cloud, FaultPlan(loss_rate=0.2))
        _drive(cloud, steps=10)
        summary = cloud.resilience_summary()
        assert "messages_delivered" in summary
        assert "messages_dropped" in summary


class TestDeterminism:
    def test_same_plan_seed_same_outcomes(self, small_corpus):
        plan = FaultPlan(seed=21, loss_rate=0.3)
        runs = []
        for _ in range(2):
            cloud = make_cloud(small_corpus)
            _attach(cloud, plan)
            runs.append(_drive(cloud))
        assert runs[0] == runs[1]


class TestTotalLoss:
    def test_total_loss_degrades_to_forced_origin_delivery(self, small_corpus):
        cloud = make_cloud(small_corpus)
        policy = RetryPolicy(max_attempts=2)
        _attach(cloud, FaultPlan(loss_rate=1.0, retry=policy))
        result = cloud.handle_request(0, 5, now=1.0)
        # Lookup lost twice -> origin fallback; origin fetch also lost
        # twice -> forced delivery. The client is still served.
        assert result.outcome is RequestOutcome.CLOUD_TIMEOUT_ORIGIN_FALLBACK
        assert cloud.fault_origin_fallbacks == 1
        assert cloud.forced_deliveries == 1
        assert cloud.retries == 2  # one retransmission per failed RPC
        assert cloud.timeouts == 4  # every attempt of both RPCs timed out
        assert cloud.caches[0].holds(5)

    def test_fallback_copy_is_not_registered(self, small_corpus):
        cloud = make_cloud(small_corpus)
        _attach(cloud, FaultPlan(loss_rate=1.0, retry=RetryPolicy(max_attempts=1)))
        cloud.handle_request(0, 5, now=1.0)
        beacon = cloud.beacon_for_doc(5)
        # The directory was unreachable, so the ad-hoc copy stays off the
        # books until a later successful interaction repairs it.
        assert 0 not in cloud.beacons[beacon].directory.holders(5)

    def test_timeouts_inflate_client_latency(self, small_corpus):
        reliable = make_cloud(small_corpus)
        lossy = make_cloud(small_corpus)
        _attach(lossy, FaultPlan(loss_rate=1.0, retry=RetryPolicy(max_attempts=2)))
        fast = reliable.handle_request(0, 5, now=1.0)
        slow = lossy.handle_request(0, 5, now=1.0)
        assert slow.latency_ms > fast.latency_ms


class TestLostUpdates:
    def test_lost_server_to_beacon_leaves_holders_stale(self, small_corpus):
        cloud = make_cloud(small_corpus)
        doc = 5
        requester = (cloud.beacon_for_doc(doc) + 1) % len(cloud.caches)
        _attach(
            cloud,
            FaultPlan(
                category_loss=(("update_server_to_beacon", 1.0),),
                retry=RetryPolicy(max_attempts=2),
            ),
        )
        cloud.handle_request(requester, doc, now=1.0)
        assert cloud.caches[requester].holds(doc)
        refreshed = cloud.handle_update(doc, now=2.0)
        assert refreshed == 0
        assert cloud.update_pushes_lost == 1

    def test_stale_holder_repaired_on_next_request(self, small_corpus):
        cloud = make_cloud(small_corpus)
        doc = 5
        requester = (cloud.beacon_for_doc(doc) + 1) % len(cloud.caches)
        _attach(
            cloud,
            FaultPlan(
                category_loss=(("update_server_to_beacon", 1.0),),
                retry=RetryPolicy(max_attempts=1),
            ),
        )
        cloud.handle_request(requester, doc, now=1.0)
        cloud.handle_update(doc, now=2.0)  # push lost: holder now stale
        result = cloud.handle_request(requester, doc, now=3.0)
        # Not a local hit: the version check caught the stale copy.
        assert result.outcome is not RequestOutcome.LOCAL_HIT
        assert cloud.stale_refreshes == 1
        copy = cloud.caches[requester].copy_of(doc)
        assert copy is not None
        assert copy.version == cloud.origin.version_of(doc)


class TestEvictionNotices:
    def test_lost_eviction_notice_is_counted(self, small_corpus):
        cloud = make_cloud(small_corpus)
        doc = 5
        requester = (cloud.beacon_for_doc(doc) + 1) % len(cloud.caches)
        cloud.handle_request(requester, doc, now=1.0)
        cloud.origin.publish_update(doc)  # silently invalidate the copy
        _attach(
            cloud,
            FaultPlan(
                category_loss=(("control", 1.0),),
                retry=RetryPolicy(max_attempts=1),
            ),
        )
        cloud.handle_request(requester, doc, now=2.0)
        # The stale-copy drop tried to tell the beacon and the notice was
        # lost: the directory keeps a dangling entry, visibly counted.
        assert cloud.eviction_notices_lost == 1
        beacon = cloud.beacon_for_doc(doc)
        assert requester in cloud.beacons[beacon].directory.holders(doc)


class TestNoCooperationFaults:
    """Regression: the direct-to-origin baseline must honour request loss.

    ``CacheNode.fetch_direct`` used to ignore the delivery outcome of its
    control-sized request leg: a lost request ticked no fault counter and
    its timeout/backoff penalties never reached the client's latency.
    """

    def test_lost_direct_request_ticks_fallback_counter(self, small_corpus):
        cloud = make_cloud(small_corpus, cooperation=False)
        _attach(
            cloud, FaultPlan(loss_rate=1.0, retry=RetryPolicy(max_attempts=2))
        )
        result = cloud.handle_request(0, 5, now=1.0)
        # The origin never heard the request, yet the client is still
        # served: the document leg is forced (last line of service).
        assert result.outcome is RequestOutcome.ORIGIN_FETCH
        assert cloud.fault_origin_fallbacks == 1
        assert cloud.forced_deliveries == 1
        assert cloud.caches[0].holds(5)

    def test_lost_direct_request_inflates_client_latency(self, small_corpus):
        reliable = make_cloud(small_corpus, cooperation=False)
        lossy = make_cloud(small_corpus, cooperation=False)
        _attach(
            lossy, FaultPlan(loss_rate=1.0, retry=RetryPolicy(max_attempts=2))
        )
        fast = reliable.handle_request(0, 5, now=1.0)
        slow = lossy.handle_request(0, 5, now=1.0)
        # The request leg's timeouts and backoff reach the reported wait.
        assert slow.latency_ms > fast.latency_ms

    def test_zero_fault_direct_path_value_identical(self, small_corpus):
        bare = make_cloud(small_corpus, cooperation=False)
        faulty = make_cloud(small_corpus, cooperation=False)
        _attach(faulty, NO_FAULTS)
        assert _drive(bare) == _drive(faulty)
        assert bare.transport.meter == faulty.transport.meter
        assert faulty.fault_origin_fallbacks == 0


class TestChurnedPlacement:
    """Regression: placement must not see holders that churn has killed.

    Directory entries can outlive their caches — churn kills a holder
    before its entries are repaired. ``placement_context`` used to pass
    those phantom holders through ``existing_holders`` (and their
    residence estimates through ``min_residence_existing``), deflating the
    duplicate-avoidance component for replicas that no longer exist.
    """

    def test_dead_holder_filtered_from_existing_holders(self, small_corpus):
        cloud = make_cloud(small_corpus)
        doc = 5
        beacon = cloud.beacon_for_doc(doc)
        holder = (beacon + 1) % len(cloud.caches)
        observer = (beacon + 2) % len(cloud.caches)
        cloud.handle_request(holder, doc, now=1.0)
        cloud.caches[holder].fail(2.0)
        # The stale directory entry is still on the books (nothing has
        # looked the document up since the failure)...
        assert holder in cloud.beacons[beacon].directory.holders(doc)
        ctx = cloud.nodes[observer].placement_context(
            doc, cloud.corpus[doc].size_bytes, 3.0, beacon
        )
        # ...but the placement policy only ever sees live replicas.
        assert holder not in ctx.existing_holders
        assert ctx.existing_holders == frozenset()
        assert ctx.min_residence_existing is None

    def test_live_holders_still_reported(self, small_corpus):
        cloud = make_cloud(small_corpus)
        doc = 5
        beacon = cloud.beacon_for_doc(doc)
        holder = (beacon + 1) % len(cloud.caches)
        observer = (beacon + 2) % len(cloud.caches)
        cloud.handle_request(holder, doc, now=1.0)
        ctx = cloud.nodes[observer].placement_context(
            doc, cloud.corpus[doc].size_bytes, 2.0, beacon
        )
        assert holder in ctx.existing_holders


class TestDeadBeacon:
    """Regression tests for the dead-beacon guard (no failure manager)."""

    def _kill_beacon_of(self, cloud, doc):
        beacon = cloud.beacon_for_doc(doc)
        cloud.caches[beacon].fail(1.0)
        return beacon

    def test_request_falls_back_to_origin(self, small_corpus):
        cloud = make_cloud(small_corpus)
        doc = 5
        beacon = self._kill_beacon_of(cloud, doc)
        requester = (beacon + 1) % len(cloud.caches)
        result = cloud.handle_request(requester, doc, now=2.0)
        assert result.outcome is RequestOutcome.BEACON_DOWN_ORIGIN_FALLBACK
        assert cloud.beacon_unreachable == 1
        assert cloud.caches[requester].holds(doc)

    def test_update_degrades_to_per_holder_origin_refresh(self, small_corpus):
        cloud = make_cloud(small_corpus)
        doc = 5
        beacon = cloud.beacon_for_doc(doc)
        requester = (beacon + 1) % len(cloud.caches)
        cloud.handle_request(requester, doc, now=1.0)
        self._kill_beacon_of(cloud, doc)
        refreshed = cloud.handle_update(doc, now=2.0)
        assert refreshed == 1
        assert cloud.beacon_unreachable == 1
        result = cloud.handle_request(requester, doc, now=3.0)
        assert result.outcome is RequestOutcome.LOCAL_HIT
