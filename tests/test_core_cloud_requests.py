"""Unit tests for the cache-cloud request path (collaborative miss handling)."""

import pytest

from repro.core.cloud import RequestOutcome
from repro.core.config import AssignmentScheme, PlacementScheme
from repro.core.protocol import LookupRequest
from repro.network.bandwidth import TrafficCategory


class TestColdMiss:
    def test_group_miss_fetches_from_origin_and_stores(self, cloud_factory):
        cloud = cloud_factory()
        result = cloud.handle_request(0, 5, now=1.0)
        assert result.outcome is RequestOutcome.ORIGIN_FETCH
        assert cloud.caches[0].holds(5)
        assert cloud.origin.fetches_served == 1

    def test_directory_registers_holder(self, cloud_factory):
        cloud = cloud_factory()
        cloud.handle_request(0, 5, now=1.0)
        beacon = cloud.beacon_for_doc(5)
        assert cloud.beacons[beacon].directory.holders(5) == {0}

    def test_second_request_same_cache_is_local_hit(self, cloud_factory):
        cloud = cloud_factory()
        cloud.handle_request(0, 5, now=1.0)
        result = cloud.handle_request(0, 5, now=2.0)
        assert result.outcome is RequestOutcome.LOCAL_HIT
        assert cloud.caches[0].stats.local_hits == 1
        assert cloud.origin.fetches_served == 1  # no second fetch

    def test_lookup_load_recorded_at_beacon(self, cloud_factory):
        cloud = cloud_factory()
        cloud.handle_request(0, 5, now=1.0)
        beacon = cloud.beacon_for_doc(5)
        assert cloud.beacons[beacon].cycle_lookups == 1

    def test_local_hit_does_not_touch_beacon(self, cloud_factory):
        cloud = cloud_factory()
        cloud.handle_request(0, 5, now=1.0)
        beacon = cloud.beacon_for_doc(5)
        lookups_before = cloud.beacons[beacon].cycle_lookups
        cloud.handle_request(0, 5, now=2.0)
        assert cloud.beacons[beacon].cycle_lookups == lookups_before

    def test_protocol_trace_captures_lookup(self, cloud_factory):
        cloud = cloud_factory()
        cloud.handle_request(0, 5, now=1.0)
        lookups = cloud.trace.of_type(LookupRequest)
        assert len(lookups) == 1
        assert lookups[0].requester == 0


class TestCloudHit:
    def test_peer_retrieval(self, cloud_factory):
        cloud = cloud_factory()
        cloud.handle_request(0, 5, now=1.0)  # cache 0 now holds doc 5
        result = cloud.handle_request(1, 5, now=2.0)
        assert result.outcome is RequestOutcome.CLOUD_HIT
        assert result.served_by == 0
        assert cloud.caches[1].stats.cloud_hits == 1
        assert cloud.origin.fetches_served == 1  # origin not contacted again

    def test_peer_transfer_bytes_accounted(self, cloud_factory):
        cloud = cloud_factory()
        cloud.handle_request(0, 5, now=1.0)
        before = cloud.transport.meter.bytes_for(TrafficCategory.PEER_TRANSFER)
        cloud.handle_request(1, 5, now=2.0)
        after = cloud.transport.meter.bytes_for(TrafficCategory.PEER_TRANSFER)
        assert after - before > 1024  # body + header

    def test_ad_hoc_replicates_at_requester(self, cloud_factory):
        cloud = cloud_factory(placement=PlacementScheme.AD_HOC)
        cloud.handle_request(0, 5, now=1.0)
        cloud.handle_request(1, 5, now=2.0)
        assert cloud.caches[1].holds(5)
        beacon = cloud.beacon_for_doc(5)
        assert cloud.beacons[beacon].directory.holders(5) == {0, 1}

    def test_directory_repair_on_phantom_holder(self, cloud_factory):
        cloud = cloud_factory()
        beacon = cloud.beacon_for_doc(5)
        # Poison the directory with a holder that has no copy.
        cloud.beacons[beacon].directory.add_holder(5, cloud.doc_irh(5), 3)
        result = cloud.handle_request(0, 5, now=1.0)
        assert result.outcome is RequestOutcome.ORIGIN_FETCH
        assert cloud.directory_repairs == 1
        assert 3 not in cloud.beacons[beacon].directory.holders(5)


class TestBeaconPlacement:
    def test_group_miss_stores_at_beacon_not_requester(self, small_corpus):
        from tests.conftest import make_cloud

        cloud = make_cloud(small_corpus, placement=PlacementScheme.BEACON)
        doc = 5
        beacon = cloud.beacon_for_doc(doc)
        requester = (beacon + 1) % 4
        result = cloud.handle_request(requester, doc, now=1.0)
        assert result.outcome is RequestOutcome.ORIGIN_FETCH
        assert cloud.caches[beacon].holds(doc)
        assert not cloud.caches[requester].holds(doc)
        assert cloud.beacons[beacon].directory.holders(doc) == {beacon}

    def test_subsequent_requests_are_cloud_hits_from_beacon(self, small_corpus):
        from tests.conftest import make_cloud

        cloud = make_cloud(small_corpus, placement=PlacementScheme.BEACON)
        doc = 5
        beacon = cloud.beacon_for_doc(doc)
        requester = (beacon + 1) % 4
        cloud.handle_request(requester, doc, now=1.0)
        result = cloud.handle_request(requester, doc, now=2.0)
        assert result.outcome is RequestOutcome.CLOUD_HIT
        assert result.served_by == beacon

    def test_request_at_beacon_itself_stores_locally(self, small_corpus):
        from tests.conftest import make_cloud

        cloud = make_cloud(small_corpus, placement=PlacementScheme.BEACON)
        doc = 5
        beacon = cloud.beacon_for_doc(doc)
        cloud.handle_request(beacon, doc, now=1.0)
        assert cloud.caches[beacon].holds(doc)
        result = cloud.handle_request(beacon, doc, now=2.0)
        assert result.outcome is RequestOutcome.LOCAL_HIT


class TestEvictionNotification:
    def test_evicted_doc_leaves_directory(self, small_corpus):
        from tests.conftest import make_cloud

        # Room for exactly 2 fixed-size docs (1024 B each + no slack).
        cloud = make_cloud(small_corpus, capacity_bytes=2048)
        cloud.handle_request(0, 1, now=1.0)
        cloud.handle_request(0, 2, now=2.0)
        cloud.handle_request(0, 3, now=3.0)  # evicts doc 1 (LRU)
        assert not cloud.caches[0].holds(1)
        beacon = cloud.beacon_for_doc(1)
        assert 0 not in cloud.beacons[beacon].directory.holders(1)

    def test_document_larger_than_disk_not_registered(self, small_corpus):
        from tests.conftest import make_cloud

        cloud = make_cloud(small_corpus, capacity_bytes=512)  # smaller than any doc
        result = cloud.handle_request(0, 1, now=1.0)
        assert result.outcome is RequestOutcome.ORIGIN_FETCH
        assert not cloud.caches[0].holds(1)
        beacon = cloud.beacon_for_doc(1)
        assert cloud.beacons[beacon].directory.holders(1) == set()


class TestNoCooperation:
    def test_every_miss_goes_to_origin(self, small_corpus):
        from tests.conftest import make_cloud

        cloud = make_cloud(small_corpus, cooperation=False)
        cloud.handle_request(0, 5, now=1.0)
        cloud.handle_request(1, 5, now=2.0)  # peer holds it, but no cooperation
        assert cloud.origin.fetches_served == 2
        assert cloud.caches[1].stats.cloud_hits == 0

    def test_no_beacon_load_recorded(self, small_corpus):
        from tests.conftest import make_cloud

        cloud = make_cloud(small_corpus, cooperation=False)
        cloud.handle_request(0, 5, now=1.0)
        assert all(b.total_load == 0 for b in cloud.beacons.values())


class TestNoCooperationAccounting:
    """Latency and bytes of the origin-direct path describe one exchange.

    Historically this path reported the full round trip to the client but
    charged only the document direction to the meter; both directions are
    now dispatched (a control-sized request out, the document back), so the
    reported latency and the metered bytes agree.
    """

    def _cloud_with_topology(self, small_corpus):
        from repro.core.cloud import CacheCloud
        from repro.core.config import CloudConfig
        from repro.network.topology import EuclideanTopology
        from repro.network.transport import Transport

        topology = EuclideanTopology(
            {0: (0.0, 0.0), 1: (40.0, 0.0), -1: (100.0, 0.0)}
        )
        config = CloudConfig(
            num_caches=2, num_rings=1, intra_gen=100, cooperation=False
        )
        return CacheCloud(
            config, small_corpus, transport=Transport(topology=topology)
        )

    def test_latency_is_the_full_round_trip(self, small_corpus):
        cloud = self._cloud_with_topology(small_corpus)
        result = cloud.handle_request(0, 5, now=1.0)
        expected_ms = 60_000.0 * cloud.transport.rtt_minutes(
            cloud.origin.node_id, 0
        )
        assert result.latency_ms == pytest.approx(expected_ms)
        assert expected_ms > 0.0

    def test_both_directions_are_metered(self, small_corpus):
        from repro.network.transport import (
            CONTROL_MESSAGE_BYTES,
            TRANSFER_HEADER_BYTES,
        )

        cloud = self._cloud_with_topology(small_corpus)
        cloud.handle_request(0, 5, now=1.0)
        meter = cloud.transport.meter
        size = cloud.corpus[5].size_bytes
        # One control-sized request out, one document (plus header) back.
        assert meter.bytes_for(TrafficCategory.CONTROL) == CONTROL_MESSAGE_BYTES
        assert meter.bytes_for(TrafficCategory.ORIGIN_FETCH) == (
            size + TRANSFER_HEADER_BYTES
        )
        assert cloud.transport.messages_attempted == 2


class TestStaleCopies:
    def test_stale_copy_refetched(self, cloud_factory):
        cloud = cloud_factory()
        cloud.handle_request(0, 5, now=1.0)
        # The origin publishes a new version without the cloud's update path
        # (models a lost update after a failure).
        cloud.origin.publish_update(5)
        result = cloud.handle_request(0, 5, now=2.0)
        assert result.outcome is not RequestOutcome.LOCAL_HIT
        assert cloud.stale_refreshes == 1
        assert cloud.caches[0].copy_of(5).version == 1


class TestConsistentAssignment:
    def test_consistent_scheme_serves_requests(self, small_corpus):
        from tests.conftest import make_cloud

        cloud = make_cloud(small_corpus, assignment=AssignmentScheme.CONSISTENT)
        result = cloud.handle_request(0, 5, now=1.0)
        assert result.outcome is RequestOutcome.ORIGIN_FETCH
        assert cloud.handle_request(1, 5, now=2.0).outcome is RequestOutcome.CLOUD_HIT

    def test_multi_hop_lookup_charged(self, small_corpus):
        from tests.conftest import make_cloud
        from repro.network.bandwidth import TrafficCategory

        dynamic = make_cloud(small_corpus, assignment=AssignmentScheme.DYNAMIC)
        consistent = make_cloud(small_corpus, assignment=AssignmentScheme.CONSISTENT)
        dynamic.handle_request(0, 5, now=1.0)
        consistent.handle_request(0, 5, now=1.0)
        assert consistent.transport.meter.messages_for(
            TrafficCategory.CONTROL
        ) >= dynamic.transport.meter.messages_for(TrafficCategory.CONTROL)


class TestGuards:
    def test_request_to_failed_cache_raises(self, small_corpus):
        from tests.conftest import make_cloud

        cloud = make_cloud(small_corpus, failure_resilience=True)
        cloud.fail_cache(2, now=1.0)
        with pytest.raises(RuntimeError):
            cloud.handle_request(2, 5, now=2.0)
