"""Unit tests for cooperative update propagation."""

from repro.core.protocol import UpdateNotice, UpdatePush
from repro.network.bandwidth import TrafficCategory


class TestUpdateWithoutHolders:
    def test_bare_invalidation_only(self, cloud_factory):
        cloud = cloud_factory()
        refreshed = cloud.handle_update(5, now=1.0)
        assert refreshed == 0
        assert cloud.origin.version_of(5) == 1
        meter = cloud.transport.meter
        assert meter.bytes_for(TrafficCategory.UPDATE_SERVER_TO_BEACON) == 0
        assert meter.bytes_for(TrafficCategory.UPDATE_FANOUT) == 0
        assert meter.messages_for(TrafficCategory.CONTROL) == 1

    def test_notice_captured_without_body(self, cloud_factory):
        cloud = cloud_factory()
        cloud.handle_update(5, now=1.0)
        notices = cloud.trace.of_type(UpdateNotice)
        assert len(notices) == 1
        assert not notices[0].carries_body

    def test_update_load_recorded_at_beacon(self, cloud_factory):
        cloud = cloud_factory()
        cloud.handle_update(5, now=1.0)
        beacon = cloud.beacon_for_doc(5)
        assert cloud.beacons[beacon].cycle_updates == 1


class TestUpdateWithHolders:
    def prepare(self, cloud, holders=(0, 1, 2)):
        for t, cache_id in enumerate(holders):
            cloud.handle_request(cache_id, 5, now=float(t))
        return cloud

    def test_all_holders_refreshed(self, cloud_factory):
        cloud = self.prepare(cloud_factory())
        refreshed = cloud.handle_update(5, now=10.0)
        assert refreshed == 3
        for cache_id in (0, 1, 2):
            assert cloud.caches[cache_id].copy_of(5).version == 1

    def test_single_server_to_beacon_body(self, cloud_factory):
        cloud = self.prepare(cloud_factory())
        cloud.handle_update(5, now=10.0)
        meter = cloud.transport.meter
        assert meter.messages_for(TrafficCategory.UPDATE_SERVER_TO_BEACON) == 1
        # The cooperative design's whole point: one server message per cloud.
        assert cloud.origin.update_messages_sent == 1

    def test_fanout_excludes_beacon_itself(self, cloud_factory):
        cloud = cloud_factory()
        beacon = cloud.beacon_for_doc(5)
        cloud.handle_request(beacon, 5, now=0.0)  # only the beacon holds it
        cloud.handle_update(5, now=1.0)
        meter = cloud.transport.meter
        assert meter.messages_for(TrafficCategory.UPDATE_FANOUT) == 0
        assert cloud.caches[beacon].copy_of(5).version == 1

    def test_fanout_counts_non_beacon_holders(self, cloud_factory):
        cloud = self.prepare(cloud_factory())
        cloud.handle_update(5, now=10.0)
        beacon = cloud.beacon_for_doc(5)
        holders = {0, 1, 2}
        expected_pushes = len(holders - {beacon})
        assert (
            cloud.transport.meter.messages_for(TrafficCategory.UPDATE_FANOUT)
            == expected_pushes
        )
        assert len(cloud.trace.of_type(UpdatePush)) == expected_pushes

    def test_holders_keep_serving_local_hits_after_update(self, cloud_factory):
        from repro.core.cloud import RequestOutcome

        cloud = self.prepare(cloud_factory())
        cloud.handle_update(5, now=10.0)
        result = cloud.handle_request(1, 5, now=11.0)
        assert result.outcome is RequestOutcome.LOCAL_HIT


class TestUpdateRateMonitoring:
    def test_update_rate_feeds_placement_context(self, cloud_factory):
        cloud = cloud_factory()
        for i in range(20):
            cloud.handle_update(5, now=float(i))
        tracker = cloud._update_rates[5]
        assert tracker.rate(20.0) > 0.1


class TestNoCooperationUpdates:
    def test_server_pushes_to_each_holder(self, small_corpus):
        from tests.conftest import make_cloud

        cloud = make_cloud(small_corpus, cooperation=False)
        cloud.handle_request(0, 5, now=0.0)
        cloud.handle_request(1, 5, now=1.0)
        refreshed = cloud.handle_update(5, now=2.0)
        assert refreshed == 2
        # One server message per holder — the cost cooperation avoids.
        assert cloud.origin.update_messages_sent == 2
        meter = cloud.transport.meter
        assert meter.messages_for(TrafficCategory.UPDATE_SERVER_TO_BEACON) == 2


class TestVersionMonotonicity:
    def test_versions_strictly_increase(self, cloud_factory):
        cloud = cloud_factory()
        cloud.handle_request(0, 5, now=0.0)
        for i in range(3):
            cloud.handle_update(5, now=float(i + 1))
        assert cloud.origin.version_of(5) == 3
        assert cloud.caches[0].copy_of(5).version == 3
