"""Unit tests for cloud configuration."""

import pytest

from repro.core.config import (
    AssignmentScheme,
    CloudConfig,
    PlacementScheme,
    UtilityWeights,
    WEIGHTS_ALL_ON,
    WEIGHTS_DSCC_OFF,
)


class TestUtilityWeights:
    def test_defaults_sum_to_one(self):
        weights = UtilityWeights()
        assert sum(weights.as_dict().values()) == pytest.approx(1.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            UtilityWeights(afc=-0.1, dai=0.5, dscc=0.3, cmc=0.3)

    def test_rejects_bad_sum(self):
        with pytest.raises(ValueError):
            UtilityWeights(afc=0.5, dai=0.5, dscc=0.5, cmc=0.5)

    def test_equal_over_three(self):
        weights = UtilityWeights.equal_over(["afc", "dai", "cmc"])
        assert weights.afc == pytest.approx(1 / 3)
        assert weights.dscc == 0.0

    def test_equal_over_rejects_unknown(self):
        with pytest.raises(ValueError):
            UtilityWeights.equal_over(["afc", "bogus"])

    def test_equal_over_rejects_duplicates(self):
        with pytest.raises(ValueError):
            UtilityWeights.equal_over(["afc", "afc"])

    def test_equal_over_rejects_empty(self):
        with pytest.raises(ValueError):
            UtilityWeights.equal_over([])

    def test_paper_presets(self):
        assert WEIGHTS_DSCC_OFF.dscc == 0.0
        assert WEIGHTS_DSCC_OFF.afc == pytest.approx(1 / 3)
        assert WEIGHTS_ALL_ON.afc == pytest.approx(0.25)


class TestCloudConfig:
    def test_paper_defaults(self):
        config = CloudConfig()
        assert config.num_caches == 10
        assert config.num_rings == 5
        assert config.intra_gen == 1000
        assert config.cycle_length == 60.0
        assert config.assignment is AssignmentScheme.DYNAMIC
        assert config.placement is PlacementScheme.UTILITY

    def test_ring_size(self):
        assert CloudConfig(num_caches=10, num_rings=5).ring_size() == 2
        assert CloudConfig(num_caches=10, num_rings=3).ring_size() == 4

    def test_ring_members_round_robin(self):
        config = CloudConfig(num_caches=6, num_rings=3)
        assert config.ring_members() == [[0, 3], [1, 4], [2, 5]]

    def test_ring_members_uneven(self):
        config = CloudConfig(num_caches=5, num_rings=2)
        members = config.ring_members()
        assert members == [[0, 2, 4], [1, 3]]

    def test_validation(self):
        with pytest.raises(ValueError):
            CloudConfig(num_caches=0)
        with pytest.raises(ValueError):
            CloudConfig(num_caches=4, num_rings=5)
        with pytest.raises(ValueError):
            CloudConfig(cycle_length=0.0)
        with pytest.raises(ValueError):
            CloudConfig(utility_threshold=1.5)
        with pytest.raises(ValueError):
            CloudConfig(capacity_bytes=0)
        with pytest.raises(ValueError):
            CloudConfig(num_caches=10, intra_gen=1)

    def test_capabilities_validation(self):
        with pytest.raises(ValueError):
            CloudConfig(num_caches=3, num_rings=1, capabilities=[1.0, 2.0])
        with pytest.raises(ValueError):
            CloudConfig(num_caches=2, num_rings=1, capabilities=[1.0, 0.0])

    def test_capability_of(self):
        config = CloudConfig(num_caches=2, num_rings=1, capabilities=[1.0, 3.0])
        assert config.capability_of(1) == 3.0
        assert CloudConfig().capability_of(5) == 1.0
