"""Unit + property tests for the consistent-hashing baseline."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.consistent import ConsistentHashAssigner


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ConsistentHashAssigner([])

    def test_rejects_bad_virtual_nodes(self):
        with pytest.raises(ValueError):
            ConsistentHashAssigner([0], virtual_nodes=0)

    def test_members_sorted(self):
        assigner = ConsistentHashAssigner([3, 1, 2])
        assert assigner.members() == [1, 2, 3]


class TestAssignment:
    def test_stable(self):
        assigner = ConsistentHashAssigner(range(5))
        assert assigner.beacon_for("url") == assigner.beacon_for("url")

    def test_single_cache_gets_everything(self):
        assigner = ConsistentHashAssigner([7])
        for i in range(20):
            assert assigner.beacon_for(f"u{i}") == 7

    def test_roughly_uniform_with_virtual_nodes(self):
        assigner = ConsistentHashAssigner(range(10), virtual_nodes=128)
        counts = [0] * 10
        for i in range(10_000):
            counts[assigner.beacon_for(f"http://doc/{i}")] += 1
        for count in counts:
            assert 600 <= count <= 1500

    def test_arc_fractions_sum_to_one(self):
        assigner = ConsistentHashAssigner(range(4), virtual_nodes=64)
        fractions = assigner.arc_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        for fraction in fractions.values():
            assert 0.1 < fraction < 0.5  # virtual nodes even things out


class TestMembershipChanges:
    def test_add_duplicate_raises(self):
        assigner = ConsistentHashAssigner([0, 1])
        with pytest.raises(ValueError):
            assigner.add_cache(1)

    def test_remove_unknown_raises(self):
        assigner = ConsistentHashAssigner([0, 1])
        with pytest.raises(KeyError):
            assigner.remove_cache(9)

    def test_minimal_disruption_on_removal(self):
        """Consistent hashing's defining property: removing one of n caches
        remaps only ~1/n of the keys."""
        assigner = ConsistentHashAssigner(range(10), virtual_nodes=64)
        urls = [f"http://doc/{i}" for i in range(3000)]
        before = {u: assigner.beacon_for(u) for u in urls}
        assigner.remove_cache(0)
        moved = sum(1 for u in urls if assigner.beacon_for(u) != before[u])
        # Keys on cache 0 (~10%) must move; others stay (allow 2x slack).
        assert moved <= len(urls) * 0.2

    def test_removed_cache_gets_no_assignments(self):
        assigner = ConsistentHashAssigner(range(5))
        assigner.remove_cache(2)
        for i in range(200):
            assert assigner.beacon_for(f"u{i}") != 2

    def test_add_back_restores_assignments(self):
        assigner = ConsistentHashAssigner(range(5), virtual_nodes=32)
        urls = [f"u{i}" for i in range(500)]
        before = {u: assigner.beacon_for(u) for u in urls}
        assigner.remove_cache(3)
        assigner.add_cache(3)
        after = {u: assigner.beacon_for(u) for u in urls}
        assert before == after


class TestDiscoveryHops:
    def test_single_node_one_hop(self):
        assert ConsistentHashAssigner([0]).discovery_hops("u") == 1

    def test_log_n_hops(self):
        assert ConsistentHashAssigner(range(16)).discovery_hops("u") == 4
        assert ConsistentHashAssigner(range(10)).discovery_hops("u") == math.ceil(
            math.log2(10)
        )


@given(
    num_caches=st.integers(min_value=1, max_value=12),
    url=st.text(min_size=1, max_size=40),
)
@settings(max_examples=60, deadline=None)
def test_assignment_always_a_member(num_caches, url):
    assigner = ConsistentHashAssigner(range(num_caches), virtual_nodes=16)
    assert assigner.beacon_for(url) in range(num_caches)
