"""Unit tests for the lookup directory."""

import pytest

from repro.core.directory import LookupDirectory


class TestHolders:
    def test_unknown_doc_has_no_holders(self):
        directory = LookupDirectory()
        assert directory.holders(7) == set()
        assert not directory.knows(7)

    def test_add_and_query(self):
        directory = LookupDirectory()
        directory.add_holder(7, irh=3, cache_id=1)
        directory.add_holder(7, irh=3, cache_id=2)
        assert directory.holders(7) == {1, 2}
        assert directory.knows(7)
        assert len(directory) == 1

    def test_holders_returns_a_copy(self):
        directory = LookupDirectory()
        directory.add_holder(7, 3, 1)
        holders = directory.holders(7)
        holders.add(99)
        assert directory.holders(7) == {1}

    def test_irh_conflict_raises(self):
        directory = LookupDirectory()
        directory.add_holder(7, 3, 1)
        with pytest.raises(ValueError):
            directory.add_holder(7, 4, 2)

    def test_remove_holder(self):
        directory = LookupDirectory()
        directory.add_holder(7, 3, 1)
        directory.add_holder(7, 3, 2)
        directory.remove_holder(7, 1)
        assert directory.holders(7) == {2}

    def test_last_holder_removal_garbage_collects(self):
        directory = LookupDirectory()
        directory.add_holder(7, 3, 1)
        directory.remove_holder(7, 1)
        assert not directory.knows(7)
        assert len(directory) == 0
        assert directory.entry_count_in_range(0, 10) == 0

    def test_remove_unknown_is_noop(self):
        directory = LookupDirectory()
        directory.remove_holder(7, 1)  # must not raise


class TestDropCache:
    def test_drop_cache_scrubs_everywhere(self):
        directory = LookupDirectory()
        directory.add_holder(1, 0, 5)
        directory.add_holder(2, 1, 5)
        directory.add_holder(2, 1, 6)
        touched = directory.drop_cache(5)
        assert touched == 2
        assert not directory.knows(1)
        assert directory.holders(2) == {6}


class TestMigration:
    def build(self):
        directory = LookupDirectory()
        directory.add_holder(1, 2, 10)
        directory.add_holder(2, 5, 11)
        directory.add_holder(3, 5, 12)
        directory.add_holder(4, 9, 13)
        return directory

    def test_entry_count_in_range(self):
        directory = self.build()
        assert directory.entry_count_in_range(0, 4) == 1
        assert directory.entry_count_in_range(5, 5) == 2
        assert directory.entry_count_in_range(0, 9) == 4

    def test_extract_range_removes_and_returns(self):
        directory = self.build()
        extracted = directory.extract_range(5, 9)
        assert {doc for doc, _, _ in extracted} == {2, 3, 4}
        assert len(directory) == 1
        assert directory.knows(1)

    def test_ingest_restores_entries(self):
        source = self.build()
        target = LookupDirectory()
        target.ingest(source.extract_range(0, 9))
        assert target.holders(2) == {11}
        assert target.holders(4) == {13}
        assert len(target) == 4

    def test_ingest_merges_holder_sets(self):
        target = LookupDirectory()
        target.add_holder(2, 5, 99)
        target.ingest([(2, 5, {11, 12})])
        assert target.holders(2) == {11, 12, 99}

    def test_snapshot_is_deep_enough(self):
        directory = self.build()
        snapshot = directory.snapshot()
        directory.drop_cache(11)
        assert any(doc == 2 and 11 in holders for doc, _, holders in snapshot)

    def test_snapshot_round_trip(self):
        directory = self.build()
        clone = LookupDirectory()
        clone.ingest(directory.snapshot())
        for doc in (1, 2, 3, 4):
            assert clone.holders(doc) == directory.holders(doc)
