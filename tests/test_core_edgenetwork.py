"""Unit tests for the multi-cloud edge cache network."""

import random

import pytest

from repro.core.config import CloudConfig, PlacementScheme
from repro.core.edgenetwork import EdgeCacheNetwork
from repro.network.topology import EuclideanTopology
from repro.workload.documents import build_corpus


@pytest.fixture
def corpus():
    return build_corpus(60, fixed_size=2048)


def base_config(**overrides):
    defaults = dict(
        num_caches=4,
        num_rings=2,
        intra_gen=100,
        cycle_length=10.0,
        placement=PlacementScheme.AD_HOC,
    )
    defaults.update(overrides)
    return CloudConfig(**defaults)


def make_network(corpus, memberships=((0, 1, 2, 3), (4, 5, 6, 7))):
    return EdgeCacheNetwork(memberships, base_config(), corpus)


class TestConstruction:
    def test_rejects_empty(self, corpus):
        with pytest.raises(ValueError):
            EdgeCacheNetwork([], base_config(), corpus)

    def test_rejects_overlapping_memberships(self, corpus):
        with pytest.raises(ValueError):
            EdgeCacheNetwork([(0, 1), (1, 2)], base_config(), corpus)

    def test_cloud_count_and_node_mapping(self, corpus):
        network = make_network(corpus)
        assert len(network) == 2
        assert network.cloud_of(0) == (0, 0)
        assert network.cloud_of(5) == (1, 1)
        assert network.cache_nodes() == list(range(8))

    def test_configs_resized_per_cloud(self, corpus):
        network = EdgeCacheNetwork(
            [(0, 1, 2, 3, 4, 5), (6, 7)], base_config(num_rings=2), corpus
        )
        assert len(network.clouds[0].caches) == 6
        assert len(network.clouds[1].caches) == 2
        # Two caches can form at most one 2-point ring.
        assert network.clouds[1].config.num_rings == 1

    def test_from_topology_uses_landmark_clustering(self, corpus):
        rng = random.Random(0)
        topo = EuclideanTopology.random(
            8, rng, extent=1000.0, num_clusters=2, cluster_spread=2.0
        )
        landmarks = []
        for i, pos in enumerate([(0, 0), (1000, 1000)]):
            node = 500 + i
            topo.add_node(node, pos)
            landmarks.append(node)
        network = EdgeCacheNetwork.from_topology(
            topo, list(range(8)), landmarks, 2, base_config(), corpus, rng=rng
        )
        assert len(network) == 2
        # Planted metro structure recovered: node i sits in metro (i % 2).
        for cloud_index in range(2):
            members = [
                node for node in range(8) if network.cloud_of(node)[0] == cloud_index
            ]
            assert len({node % 2 for node in members}) == 1


class TestRequestRouting:
    def test_requests_stay_in_their_cloud(self, corpus):
        network = make_network(corpus)
        network.handle_request(0, 7, now=0.0)
        assert network.clouds[0].requests_handled == 1
        assert network.clouds[1].requests_handled == 0

    def test_no_cross_cloud_peer_serving(self, corpus):
        network = make_network(corpus)
        network.handle_request(0, 7, now=0.0)  # cloud 0 now holds doc 7
        result = network.handle_request(4, 7, now=1.0)  # cloud 1 request
        from repro.core.cloud import RequestOutcome

        assert result.outcome is RequestOutcome.ORIGIN_FETCH

    def test_within_cloud_cooperation(self, corpus):
        network = make_network(corpus)
        network.handle_request(0, 7, now=0.0)
        result = network.handle_request(1, 7, now=1.0)
        from repro.core.cloud import RequestOutcome

        assert result.outcome is RequestOutcome.CLOUD_HIT


class TestUpdatePropagation:
    def test_one_server_message_per_holding_cloud(self, corpus):
        network = make_network(corpus)
        # Doc 7 held in both clouds, by two caches each.
        for node in (0, 1, 4, 5):
            network.handle_request(node, 7, now=0.0)
        refreshed = network.handle_update(7, now=1.0)
        assert refreshed == 4
        # 4 holders but only 2 server messages — one per cloud.
        assert network.origin.update_messages_sent == 2

    def test_versions_consistent_across_clouds(self, corpus):
        network = make_network(corpus)
        for node in (0, 4):
            network.handle_request(node, 7, now=0.0)
        network.handle_update(7, now=1.0)
        assert network.origin.version_of(7) == 1
        for node in (0, 4):
            cloud_index, local = network.cloud_of(node)
            assert network.clouds[cloud_index].caches[local].copy_of(7).version == 1

    def test_update_with_no_holders_sends_no_bodies(self, corpus):
        network = make_network(corpus)
        assert network.handle_update(7, now=0.0) == 0
        assert network.origin.update_messages_sent == 0

    def test_holders_network_wide(self, corpus):
        network = make_network(corpus)
        for node in (0, 1, 4):
            network.handle_request(node, 7, now=0.0)
        assert network.holders_network_wide(7) == 3


class TestCyclesAndStats:
    def test_run_cycles_touches_every_cloud(self, corpus):
        network = make_network(corpus)
        network.run_cycles(now=10.0)
        assert all(cloud.cycles_run == 1 for cloud in network.clouds)

    def test_stats_aggregate(self, corpus):
        network = make_network(corpus)
        network.handle_request(0, 7, now=0.0)
        network.handle_request(1, 7, now=1.0)
        network.handle_update(7, now=2.0)
        stats = network.stats()
        assert stats.requests == 2
        assert stats.updates == 1
        assert stats.cloud_hit_rate == pytest.approx(0.5)
        assert stats.total_megabytes > 0
