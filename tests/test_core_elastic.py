"""Elastic sizing: watermark policy, warm join, safe drain, scale events.

Layers of coverage:

1. :class:`~repro.core.elastic.ElasticConfig` validation and attach-time
   requirements (overload signals + failure resilience are mandatory).
2. Membership mechanics: initial sizing, warm join, retirement, the
   standby discipline (crash-downed nodes are not standbys), and ring
   coverage guards.
3. The safe-drain contract: every pre-drain resident document is handed
   off or *explicitly* invalidated — counters account for all of them,
   bytes are charged, staleness and the byte budget divert to
   invalidation, and the invariant auditor stays clean.
4. Hysteresis: equal watermarks and ``cooldown=0`` must converge, never
   flap membership; cooldown actually blocks consecutive changes.
5. Scripted ``instantiate``/``retire`` churn events: routed through the
   controller, counted apart from crashes, skipped without one, and the
   ``ChurnStats.as_dict`` schema stays legacy-identical until they run.
6. Churn/retirement queue hygiene and the REJECTED-latency contract.
7. A hypothesis property: *any* scale sequence keeps the cloud sound.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audit.invariants import InvariantAuditor
from repro.core.elastic import ElasticConfig, ElasticController
from repro.core.node import RequestOutcome
from repro.core.overload import OverloadConfig
from repro.faults.churn import (
    FAIL,
    INSTANTIATE,
    RETIRE,
    ChurnEvent,
    ChurnSchedule,
    ChurnStats,
)
from repro.network.transport import TRANSFER_HEADER_BYTES
from repro.observe import Telemetry
from repro.workload.documents import build_corpus
from tests.conftest import make_cloud


def elastic_cloud(corpus, num_caches=6, overload=None, **config_kwargs):
    """A resilient cloud with overload + elastic controllers attached."""
    cloud = make_cloud(
        corpus, num_caches=num_caches, num_rings=2, failure_resilience=True
    )
    cloud.attach_overload(overload if overload is not None else OverloadConfig())
    controller = cloud.attach_elastic(ElasticConfig(**config_kwargs))
    return cloud, controller


def feed(controller, now, depth, rejected=0, admitted=10):
    """Advance the overload counters so the window mean depth is ``depth``,
    then run one controller check."""
    stats = controller.cloud.overload.stats
    stats.queue_depth_sum += depth * 10
    stats.queue_depth_samples += 10
    stats.requests_admitted += admitted
    stats.requests_rejected += rejected
    controller.check(now)


class TestElasticConfig:
    def test_defaults_valid(self):
        config = ElasticConfig()
        assert config.min_caches == 1
        assert config.max_caches is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_caches": 0},
            {"min_caches": 4, "max_caches": 3},
            {"min_caches": 2, "initial_caches": 1},
            {"max_caches": 4, "initial_caches": 5},
            {"scale_out_depth": -1.0},
            {"scale_out_depth": 1.0, "scale_in_depth": 2.0},
            {"scale_out_rejection": 1.5},
            {"window_minutes": 0.0},
            {"check_period_minutes": 0.0},
            {"cooldown_minutes": -1.0},
            {"drain_byte_budget": -1},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            ElasticConfig(**kwargs)


class TestAttach:
    def test_requires_failure_resilience(self, small_corpus):
        cloud = make_cloud(small_corpus)
        with pytest.raises(RuntimeError):
            cloud.attach_elastic(ElasticConfig())

    def test_requires_overload_signals(self, small_corpus):
        cloud = make_cloud(small_corpus, failure_resilience=True)
        with pytest.raises(RuntimeError):
            cloud.attach_elastic(ElasticConfig())

    def test_min_caches_cannot_exceed_cloud(self, small_corpus):
        cloud = make_cloud(
            small_corpus, num_caches=4, failure_resilience=True
        )
        cloud.attach_overload(OverloadConfig())
        with pytest.raises(ValueError):
            cloud.attach_elastic(ElasticConfig(min_caches=5))

    def test_attach_is_idempotent(self, small_corpus):
        cloud, controller = elastic_cloud(small_corpus)
        assert cloud.attach_elastic(ElasticConfig()) is controller
        assert isinstance(controller, ElasticController)

    def test_resilience_summary_carries_elastic_counters(self, small_corpus):
        cloud, controller = elastic_cloud(small_corpus)
        controller.finalize(3.0)
        summary = cloud.resilience_summary()
        assert summary["elastic_node_minutes"] == pytest.approx(18.0)
        assert summary["elastic_scale_out_events"] == 0.0
        # Without a controller the schema is untouched.
        bare = make_cloud(small_corpus, failure_resilience=True)
        assert not any(
            key.startswith("elastic_") for key in bare.resilience_summary()
        )


class TestMembershipMechanics:
    def test_initial_sizing_retires_without_counting_events(
        self, small_corpus
    ):
        cloud, controller = elastic_cloud(
            small_corpus, min_caches=2, initial_caches=3
        )
        assert controller.active_count() == 3
        assert controller.stats.scale_in_events == 0
        retired = [c.cache_id for c in cloud.caches if not c.alive]
        assert len(retired) == 3
        assert all(controller.is_standby(cache_id) for cache_id in retired)

    def test_warm_join_restores_ring_and_directory_ownership(
        self, small_corpus
    ):
        cloud, controller = elastic_cloud(small_corpus, min_caches=2)
        # Populate a few documents, then bounce the highest eligible node.
        for doc_id in range(8):
            cloud.handle_request(doc_id % 6, doc_id, now=1.0)
        victim = controller._choose_victim()
        controller.retire_node(victim, 2.0)
        assert controller.is_standby(victim)
        controller.instantiate_node(victim, 3.0)
        assert cloud.caches[victim].alive
        assert not controller.is_standby(victim)
        # The rejoined node owns a sub-range again and the directory is
        # sound — a request routed anywhere must still resolve.
        assert InvariantAuditor().audit(cloud).hard_violations == 0
        result = cloud.handle_request(victim, 3, now=4.0)
        assert result.outcome is not RequestOutcome.REJECTED

    def test_instantiate_rejects_non_standby(self, small_corpus):
        _, controller = elastic_cloud(small_corpus)
        with pytest.raises(ValueError):
            controller.instantiate_node(0, 1.0)

    def test_retire_rejects_dead_node(self, small_corpus):
        cloud, controller = elastic_cloud(small_corpus, min_caches=1)
        victim = controller._choose_victim()
        controller.retire_node(victim, 1.0)
        with pytest.raises(ValueError):
            controller.retire_node(victim, 2.0)

    def test_never_retires_last_ring_member(self, small_corpus):
        # 2 caches / 2 rings: every node is the last member of its ring.
        cloud, controller = elastic_cloud(small_corpus, num_caches=2)
        assert controller._choose_victim() is None
        with pytest.raises(ValueError):
            controller.retire_node(0, 1.0)

    def test_crashed_node_is_not_a_standby(self, small_corpus):
        cloud, controller = elastic_cloud(small_corpus)
        cloud.fail_cache(5, now=1.0)
        assert not controller.is_standby(5)
        with pytest.raises(ValueError):
            controller.instantiate_node(5, 2.0)

    def test_node_minutes_integrate_membership_changes(self, small_corpus):
        _, controller = elastic_cloud(small_corpus, min_caches=2)
        victim = controller._choose_victim()
        controller.retire_node(victim, 2.0)  # 6 nodes for 2 minutes
        controller.finalize(4.0)  # then 5 nodes for 2 minutes
        assert controller.stats.node_minutes == pytest.approx(22.0)


class TestSafeDrain:
    def _populated_victim(self, corpus, **config_kwargs):
        cloud, controller = elastic_cloud(corpus, **config_kwargs)
        victim = controller._choose_victim()
        for doc_id in range(6):
            cloud.handle_request(victim, doc_id, now=1.0)
        assert len(cloud.caches[victim].storage) > 0
        return cloud, controller, victim

    def test_every_predrain_doc_is_handed_off_or_invalidated(
        self, small_corpus
    ):
        cloud, controller, victim = self._populated_victim(small_corpus)
        before = set(cloud.caches[victim].storage)
        controller.retire_node(victim, 2.0)
        stats = controller.stats
        assert stats.docs_handed_off + stats.docs_invalidated == len(before)
        assert len(cloud.caches[victim].storage) == 0
        # Fresh fitting copies moved: bytes charged, bodies resident at a
        # live cache and registered at the beacon (audited below).
        assert stats.docs_handed_off > 0
        assert stats.drain_bytes >= stats.docs_handed_off * (
            1024 + TRANSFER_HEADER_BYTES
        )
        report = InvariantAuditor().audit(cloud)
        assert report.hard_violations == 0

    def test_zero_budget_invalidates_everything_explicitly(self, small_corpus):
        cloud, controller, victim = self._populated_victim(
            small_corpus, drain_byte_budget=0
        )
        before = set(cloud.caches[victim].storage)
        controller.retire_node(victim, 2.0)
        assert controller.stats.docs_handed_off == 0
        assert controller.stats.docs_invalidated == len(before)
        assert InvariantAuditor().audit(cloud).hard_violations == 0

    def test_stale_copies_are_invalidated_not_shipped(self, small_corpus):
        cloud, controller, victim = self._populated_victim(small_corpus)
        # Make one resident copy stale: the origin moves on silently.
        doc_id = next(iter(cloud.caches[victim].storage))
        cloud.origin.publish_update(doc_id)
        controller.retire_node(victim, 2.0)
        assert controller.stats.docs_invalidated >= 1
        # No live cache inherited the stale body from the drain path.
        for cache in cloud.caches:
            if cache.alive and cache.holds(doc_id):
                copy = cache.storage.get(doc_id)
                assert copy.version >= cloud.origin.version_of(doc_id)

    def test_retirement_directory_migrates_to_ring_successor(
        self, small_corpus
    ):
        cloud, controller, victim = self._populated_victim(small_corpus)
        controller.retire_node(victim, 2.0)
        # Every document previously beaconed at the victim resolves at a
        # live beacon now.
        for doc_id in range(len(small_corpus)):
            assert cloud.caches[cloud.beacon_for_doc(doc_id)].alive


class TestHysteresis:
    def test_equal_watermarks_do_not_flap(self, small_corpus):
        _, controller = elastic_cloud(
            small_corpus,
            min_caches=2,
            initial_caches=4,
            scale_out_depth=2.0,
            scale_in_depth=2.0,
            cooldown_minutes=0.0,
            window_minutes=3.0,
            check_period_minutes=1.0,
        )
        # A steady boundary signal: the out-condition wins every check, so
        # the size converges to max and *stays* there — no in/out cycling.
        for minute in range(1, 12):
            feed(controller, float(minute), depth=2)
        assert controller.active_count() == 6
        assert controller.stats.scale_out_events == 2
        assert controller.stats.scale_in_events == 0

    def test_zero_cooldown_converges_to_min_without_flapping(
        self, small_corpus
    ):
        _, controller = elastic_cloud(
            small_corpus,
            min_caches=2,
            scale_out_depth=4.0,
            scale_in_depth=1.0,
            cooldown_minutes=0.0,
            window_minutes=3.0,
            check_period_minutes=1.0,
        )
        for minute in range(1, 12):
            feed(controller, float(minute), depth=0)
        assert controller.active_count() == 2
        assert controller.stats.scale_in_events == 4
        assert controller.stats.scale_out_events == 0
        assert controller.stats.blocked_bounds > 0

    def test_cooldown_blocks_consecutive_changes(self, small_corpus):
        _, controller = elastic_cloud(
            small_corpus,
            min_caches=2,
            initial_caches=3,
            scale_out_depth=2.0,
            cooldown_minutes=10.0,
            window_minutes=3.0,
            check_period_minutes=1.0,
        )
        feed(controller, 1.0, depth=5)  # observe only (window too short)
        feed(controller, 2.0, depth=5)  # scales out
        feed(controller, 3.0, depth=5)  # inside cooldown
        assert controller.stats.scale_out_events == 1
        assert controller.stats.blocked_cooldown == 1

    def test_rejection_rate_triggers_scale_out(self, small_corpus):
        _, controller = elastic_cloud(
            small_corpus,
            min_caches=2,
            initial_caches=3,
            scale_out_depth=100.0,
            scale_out_rejection=0.05,
            cooldown_minutes=0.0,
            window_minutes=3.0,
            check_period_minutes=1.0,
        )
        feed(controller, 1.0, depth=0, rejected=0)
        feed(controller, 2.0, depth=0, rejected=5, admitted=5)
        assert controller.stats.scale_out_events == 1

    def test_any_rejection_vetoes_scale_in(self, small_corpus):
        _, controller = elastic_cloud(
            small_corpus,
            min_caches=2,
            scale_out_rejection=0.5,
            cooldown_minutes=0.0,
            window_minutes=3.0,
            check_period_minutes=1.0,
        )
        feed(controller, 1.0, depth=0)
        # Quiet queues but a rejected client in the window: hold steady.
        feed(controller, 2.0, depth=0, rejected=1, admitted=99)
        assert controller.active_count() == 6
        assert controller.stats.scale_in_events == 0

    def test_warmup_reset_rebases_the_window(self, small_corpus):
        _, controller = elastic_cloud(
            small_corpus, min_caches=2, window_minutes=3.0
        )
        feed(controller, 1.0, depth=9)
        feed(controller, 2.0, depth=9)
        stats = controller.cloud.overload.stats
        stats.reset()  # the runner's warm-up reset
        evaluations = controller.stats.evaluations
        controller.check(3.0)  # counters moved backward: observe only
        assert controller.stats.evaluations == evaluations


class TestScheduledScaleEvents:
    def _schedule(self):
        return ChurnSchedule(
            [
                ChurnEvent(1.0, 5, RETIRE),
                ChurnEvent(2.0, 5, INSTANTIATE),
            ]
        )

    def test_without_controller_scale_events_are_skipped(self, small_corpus):
        cloud = make_cloud(
            small_corpus, num_caches=6, failure_resilience=True
        )
        schedule = self._schedule()
        schedule.apply_due(cloud, 3.0)
        assert schedule.stats.skipped == 2
        assert schedule.stats.scale_ins == 0
        assert "churn_scale_outs" not in schedule.stats.as_dict()

    def test_with_controller_scale_events_execute_and_count(
        self, small_corpus
    ):
        cloud, controller = elastic_cloud(small_corpus, min_caches=2)
        schedule = self._schedule()
        schedule.apply_due(cloud, 3.0)
        assert schedule.stats.scale_ins == 1
        assert schedule.stats.scale_outs == 1
        assert schedule.stats.failures == 0
        assert cloud.caches[5].alive
        summary = schedule.stats.as_dict()
        assert summary["churn_scale_outs"] == 1.0
        assert summary["churn_scale_ins"] == 1.0

    def test_crashed_node_cannot_be_instantiated_by_script(
        self, small_corpus
    ):
        cloud, controller = elastic_cloud(small_corpus, min_caches=2)
        schedule = ChurnSchedule(
            [ChurnEvent(1.0, 5, FAIL), ChurnEvent(2.0, 5, INSTANTIATE)]
        )
        schedule.apply_due(cloud, 3.0)
        assert schedule.stats.failures == 1
        assert schedule.stats.scale_outs == 0
        assert schedule.stats.skipped == 1

    def test_legacy_as_dict_schema_without_scale_events(self):
        stats = ChurnStats(failures=1, recoveries=1)
        assert set(stats.as_dict()) == {
            "churn_failures",
            "churn_recoveries",
            "churn_skipped",
            "unavailability_minutes",
            "unavailability_windows",
        }


class TestQueueHygieneOnMembershipChange:
    def _deep_queue_cloud(self, corpus):
        cloud = make_cloud(
            corpus, num_caches=6, num_rings=2, failure_resilience=True
        )
        overload = cloud.attach_overload(
            OverloadConfig(queue_capacity=100, service_ms=60_000.0)
        )
        return cloud, overload

    def test_crash_recovery_resets_the_queue(self, small_corpus):
        cloud, overload = self._deep_queue_cloud(small_corpus)
        for _ in range(3):
            overload.admit_message(5, "control", 0)
        assert overload.depth_of(5) > 0
        cloud.fail_cache(5, now=1.0)
        cloud.recover_cache(5, now=2.0)
        assert overload.depth_of(5) == 0

    def test_retirement_resets_the_queue(self, small_corpus):
        cloud, overload = self._deep_queue_cloud(small_corpus)
        controller = cloud.attach_elastic(ElasticConfig(min_caches=2))
        victim = controller._choose_victim()
        for _ in range(3):
            overload.admit_message(victim, "control", 0)
        assert overload.depth_of(victim) > 0
        controller.retire_node(victim, 1.0)
        assert overload.depth_of(victim) == 0


class TestRejectedRequestsAndLatency:
    def test_rejected_requests_do_not_enter_the_latency_record(
        self, small_corpus
    ):
        cloud = make_cloud(small_corpus)
        cloud.attach_overload(OverloadConfig(queue_capacity=0))
        telemetry = Telemetry()
        cloud.attach_telemetry(telemetry)
        result = cloud.handle_request(0, 5, now=1.0)
        assert result.outcome is RequestOutcome.REJECTED
        # A zero-latency non-answer must not drag the percentiles down.
        assert len(telemetry.request_latencies) == 0

    def test_served_requests_are_recorded(self, small_corpus):
        cloud = make_cloud(small_corpus)
        cloud.attach_overload(OverloadConfig())
        telemetry = Telemetry()
        cloud.attach_telemetry(telemetry)
        cloud.handle_request(0, 5, now=1.0)
        assert len(telemetry.request_latencies) == 1


class TestMonitorElasticSeries:
    def test_series_present_only_with_controller(self, small_corpus):
        from repro.metrics.collector import CloudMonitor
        from repro.simulation.engine import Simulator

        bare = make_cloud(small_corpus, failure_resilience=True)
        monitor = CloudMonitor(bare, Simulator(), period=1.0)
        assert "cloud_size" not in monitor.series

    def test_cloud_size_gauge_and_windowed_scale_events(self, small_corpus):
        from repro.metrics.collector import CloudMonitor
        from repro.simulation.engine import Simulator

        cloud, controller = elastic_cloud(small_corpus, min_caches=2)
        simulator = Simulator()
        monitor = CloudMonitor(cloud, simulator, period=1.0)
        monitor.start()
        simulator.schedule_at(
            0.5,
            lambda: controller.retire_node(
                controller._choose_victim(), simulator.now
            ),
        )
        simulator.run_until(2.5)
        sizes = [value for _, value in monitor.series["cloud_size"].items()]
        assert sizes == [5.0, 5.0]
        events = [
            value for _, value in monitor.series["scale_in_events"].items()
        ]
        assert events == [1.0, 0.0]
        drain = [value for _, value in monitor.series["drain_bytes"].items()]
        assert drain[1] == 0.0


class TestScaleSequenceProperty:
    """Satellite invariant: any scale sequence keeps the cloud sound."""

    @settings(max_examples=20, deadline=None)
    @given(
        ops=st.lists(
            st.sampled_from(["out", "in", "req"]), min_size=1, max_size=24
        )
    )
    def test_any_scale_sequence_keeps_the_cloud_sound(self, ops):
        corpus = build_corpus(40, fixed_size=1024)
        cloud = make_cloud(
            corpus, num_caches=6, num_rings=2, failure_resilience=True
        )
        cloud.attach_overload(OverloadConfig())
        controller = cloud.attach_elastic(ElasticConfig(min_caches=2))
        auditor = InvariantAuditor()
        now = 0.0
        doc = 0
        for op in ops:
            now += 1.0
            if op == "req":
                for _ in range(5):
                    cloud.handle_request(doc % 6, doc % 40, now=now)
                    doc += 1
                continue
            if op == "out":
                if controller._standby:
                    controller.instantiate_node(min(controller._standby), now)
            else:
                victim = controller._choose_victim()
                if (
                    victim is None
                    or controller.active_count() <= controller.min_caches
                ):
                    continue
                before = len(cloud.caches[victim].storage)
                handed = controller.stats.docs_handed_off
                invalidated = controller.stats.docs_invalidated
                controller.retire_node(victim, now)
                moved = controller.stats.docs_handed_off - handed
                gone = controller.stats.docs_invalidated - invalidated
                # Never silent loss: the drain accounts for every copy.
                assert moved + gone == before
            assert auditor.audit(cloud).hard_violations == 0
        assert auditor.audit(cloud).hard_violations == 0
