"""The message fabric: dispatch styles and the zero-fault guarantee.

Two layers of coverage:

1. Unit tests of :class:`~repro.core.fabric.MessageFabric` dispatch styles
   (best-effort / reliable / forced / system / RPC) against a raw
   transport and a total-loss injector.
2. The structural equivalence guarantee behind the protocol-plane
   refactor: a cloud with a zero-fault injector attached produces a
   message-for-message identical dispatch log — and identical meter,
   attempt-ledger, and fabric-stat totals — to a cloud with no injector
   at all. This upgrades the older "same outcomes and stats" check to
   "the very same wire messages in the very same order".
"""

import pytest

from repro.core.fabric import (
    DELIVERED_FREE,
    Delivery,
    DispatchRecord,
    MessageFabric,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import NO_FAULTS, FaultPlan, RetryPolicy
from repro.network.bandwidth import TrafficCategory
from repro.network.topology import EuclideanTopology
from repro.network.transport import (
    CONTROL_MESSAGE_BYTES,
    TRANSFER_HEADER_BYTES,
    Transport,
)
from tests.conftest import make_cloud


def _fabric(plan=None, **plan_kwargs):
    """A fabric over a fresh transport, optionally with faults attached."""
    transport = Transport()
    fabric = MessageFabric(transport)
    if plan is not None or plan_kwargs:
        plan = plan if plan is not None else FaultPlan(**plan_kwargs)
        fabric.attach_faults(FaultInjector(plan, transport))
    return fabric


class TestAttachValidation:
    def test_rejects_injector_over_foreign_transport(self):
        fabric = MessageFabric(Transport())
        injector = FaultInjector(NO_FAULTS, Transport())
        with pytest.raises(ValueError):
            fabric.attach_faults(injector)

    def test_detach_keeps_injector_stats(self):
        fabric = _fabric(loss_rate=1.0)
        injector = fabric.faults
        fabric.send_control(0, 1)
        fabric.detach_faults()
        assert fabric.faults is None
        assert injector.stats.dropped == 1
        # Post-detach dispatches bypass the (detached) middleware.
        assert fabric.send_control(0, 1).ok


class TestDispatchStyles:
    def test_fault_free_delivery_is_single_attempt(self):
        fabric = _fabric()
        delivery = fabric.send_control(0, 1)
        assert delivery == Delivery(ok=True, latency=0.0, attempts=1)
        assert fabric.stats.dispatches == 1
        assert fabric.stats.retries == 0

    def test_document_dispatch_charges_header(self):
        fabric = _fabric()
        fabric.send_document(0, 1, 1000, TrafficCategory.PEER_TRANSFER)
        meter = fabric.transport.meter
        assert meter.bytes_for(TrafficCategory.PEER_TRANSFER) == (
            1000 + TRANSFER_HEADER_BYTES
        )

    def test_document_dispatch_rejects_empty_body(self):
        fabric = _fabric()
        with pytest.raises(ValueError):
            fabric.send_document(0, 1, 0, TrafficCategory.PEER_TRANSFER)

    def test_lost_best_effort_costs_nothing(self):
        """Fire-and-forget: no retransmission, no timeout, no latency."""
        fabric = _fabric(loss_rate=1.0, retry=RetryPolicy(max_attempts=3))
        delivery = fabric.send_control(0, 1, reliable=False)
        assert not delivery.ok
        assert delivery.latency == 0.0
        assert delivery.attempts == 1
        assert fabric.stats.timeouts == 0
        assert fabric.stats.retries == 0

    def test_lost_reliable_pays_timeouts_and_backoff(self):
        policy = RetryPolicy(max_attempts=3)
        fabric = _fabric(loss_rate=1.0, retry=policy)
        delivery = fabric.send_control(0, 1, reliable=True)
        assert not delivery.ok
        assert delivery.attempts == 3
        assert fabric.stats.retries == 2
        assert fabric.stats.timeouts == 3
        expected = 3 * policy.timeout_minutes + sum(
            policy.backoff_minutes(k) for k in range(2)
        )
        assert delivery.latency == pytest.approx(expected)

    def test_forced_document_always_arrives(self):
        fabric = _fabric(loss_rate=1.0, retry=RetryPolicy(max_attempts=2))
        latency = fabric.send_forced_document(
            0, 1, 1000, TrafficCategory.ORIGIN_FETCH
        )
        assert latency > 0.0  # timeout penalties accrued on the way
        assert fabric.stats.forced_deliveries == 1
        # Two faulted attempts plus the out-of-band delivery, all charged.
        assert fabric.transport.messages_attempted == 3
        assert fabric.transport.meter.bytes_for(TrafficCategory.ORIGIN_FETCH) == (
            3 * (1000 + TRANSFER_HEADER_BYTES)
        )

    def test_system_plane_bypasses_fault_middleware(self):
        fabric = _fabric(loss_rate=1.0)
        fabric.send_system(0, 1, 2048, TrafficCategory.DIRECTORY_MIGRATION)
        fabric.send_system_control(0, 1)
        # Charged and counted, but the injector never saw either message.
        assert fabric.transport.messages_attempted == 2
        assert fabric.faults.stats.dropped == 0
        assert fabric.faults.stats.bytes_attempted == 0

    def test_traced_message_emitted_only_on_delivery(self):
        fabric = _fabric(loss_rate=1.0)
        fabric.trace.enabled = True
        fabric.send_control(0, 1, message="lost-probe")
        assert fabric.trace.messages == []
        fabric.detach_faults()
        fabric.send_control(0, 1, message="delivered-probe")
        assert fabric.trace.messages == ["delivered-probe"]


class TestFastPath:
    """The no-middleware dispatch fast path (see fabric module docs)."""

    def test_flag_tracks_every_attachment(self):
        from repro.observe import Telemetry

        fabric = _fabric()
        assert fabric._fast_path
        fabric.attach_faults(FaultInjector(NO_FAULTS, fabric.transport))
        assert not fabric._fast_path
        fabric.detach_faults()
        assert fabric._fast_path
        fabric.capture_dispatches()
        assert not fabric._fast_path
        fabric.stop_dispatch_capture()
        assert fabric._fast_path
        fabric.telemetry = Telemetry()
        assert not fabric._fast_path
        fabric.telemetry = None
        assert fabric._fast_path

    def test_zero_latency_delivery_is_interned(self):
        """Topology-less dispatches return the shared frozen singleton."""
        fabric = _fabric()
        assert fabric.send_control(0, 1) is DELIVERED_FREE
        assert fabric.request_response(0, 1, 2) is DELIVERED_FREE

    def test_rpc_charges_all_legs_and_fires_callback(self):
        fabric = _fabric()
        fired = []
        delivery = fabric.request_response(
            0, 1, 3, irh=7, on_request_delivered=fired.append
        )
        assert delivery.ok
        assert fired == [7]  # the IrH value threads through the fabric
        assert fabric.stats.dispatches == 4  # 3 out + 1 back
        assert fabric.transport.messages_attempted == 4
        assert fabric.transport.meter.bytes_for(TrafficCategory.CONTROL) == (
            4 * CONTROL_MESSAGE_BYTES
        )

    def test_traced_message_still_emitted(self):
        """The fast path skips observers, never the protocol trace."""
        fabric = _fabric()
        fabric.trace.enabled = True
        fabric.send_control(0, 1, message="probe")
        fabric.request_response(0, 1, 1, request="rpc-probe")
        assert fabric.trace.messages == ["probe", "rpc-probe"]


def _topology_pair():
    """Two fabrics over identical three-node topologies; the second one has
    a dispatch capture attached, forcing it onto the general path."""
    coords = {0: (0.0, 0.0), 1: (30.0, 0.0), 2: (0.0, 40.0)}
    fast = MessageFabric(Transport(topology=EuclideanTopology(dict(coords))))
    slow = MessageFabric(Transport(topology=EuclideanTopology(dict(coords))))
    log = slow.capture_dispatches()
    return fast, slow, log


class TestBatchEquivalence:
    """Batched fast-path sends are indistinguishable from per-leg sends."""

    LEGS = [(0, 1, 512), (0, 2, 2048), (1, 2, 128)]

    def test_system_batch_matches_per_leg_stream(self):
        fast, slow, log = _topology_pair()
        category = TrafficCategory.DIRECTORY_MIGRATION
        fast_latency = fast.send_system_batch(self.LEGS, category)
        slow_latency = slow.send_system_batch(self.LEGS, category)
        assert fast_latency == slow_latency  # slowest leg either way
        assert fast.transport.meter == slow.transport.meter
        assert (
            fast.transport.messages_attempted
            == slow.transport.messages_attempted
        )
        assert fast.transport.bytes_attempted == slow.transport.bytes_attempted
        assert fast.stats.dispatches == slow.stats.dispatches == len(self.LEGS)
        # The observed path saw the exact per-attempt stream.
        assert [(r.src, r.dst, r.num_bytes) for r in log] == self.LEGS

    def test_empty_batch_is_free(self):
        fast, slow, log = _topology_pair()
        assert fast.send_system_batch([], TrafficCategory.CONTROL) == 0.0
        assert fast.stats.dispatches == 0
        assert fast.transport.messages_attempted == 0

    def test_exchange_matches_per_leg_stream(self):
        fast, slow, log = _topology_pair()
        category = TrafficCategory.ANTI_ENTROPY
        assert fast.send_exchange(0, 1, 300, 700, category) == (True, True)
        assert slow.send_exchange(0, 1, 300, 700, category) == (True, True)
        assert fast.transport.meter == slow.transport.meter
        assert (
            fast.transport.messages_attempted
            == slow.transport.messages_attempted
        )
        assert fast.transport.bytes_attempted == slow.transport.bytes_attempted
        assert fast.stats.dispatches == slow.stats.dispatches == 2
        assert [(r.src, r.dst, r.num_bytes) for r in log] == [
            (0, 1, 300),
            (1, 0, 700),
        ]

    def test_exchange_reverse_leg_needs_forward_delivery(self):
        transport = Transport()
        fabric = MessageFabric(transport)
        fabric.attach_faults(
            FaultInjector(FaultPlan(loss_rate=1.0), transport)
        )
        assert fabric.send_exchange(
            0, 1, 300, 700, TrafficCategory.ANTI_ENTROPY
        ) == (False, False)
        # Only the forward leg was attempted (a server cannot answer a
        # digest it never received), but its bytes were still charged.
        assert transport.messages_attempted == 1
        assert transport.bytes_attempted == 300


class TestForcedDeliveryTrace:
    """Regression: the forced out-of-band leg must trace its message.

    A transfer delivered past the retry budget reached the client just as
    surely as one the budget covered; under heavy loss the captured trace
    used to disagree with what the client actually received.
    """

    def test_forced_leg_emits_the_message(self):
        fabric = _fabric(loss_rate=1.0, retry=RetryPolicy(max_attempts=2))
        fabric.trace.enabled = True
        fabric.send_forced_document(
            0, 1, 1000, TrafficCategory.ORIGIN_FETCH, message="doc-5"
        )
        assert fabric.stats.forced_deliveries == 1
        assert fabric.trace.messages == ["doc-5"]

    def test_cloud_trace_records_every_served_document(self, small_corpus):
        from repro.core.protocol import DocumentTransfer

        cloud = make_cloud(small_corpus)
        cloud.attach_faults(
            FaultInjector(
                FaultPlan(loss_rate=1.0, retry=RetryPolicy(max_attempts=2)),
                cloud.transport,
            )
        )
        result = cloud.handle_request(0, 5, now=1.0)
        assert cloud.forced_deliveries == 1
        # The client was served exactly once, by the origin — and the trace
        # says so even though the transfer rode the forced leg.
        transfers = cloud.trace.of_type(DocumentTransfer)
        served = [t for t in transfers if t.doc_id == 5 and t.dst == 0]
        assert len(served) == 1
        assert served[0].src == result.served_by


class _ResponseDropInjector(FaultInjector):
    """Drops every message on one directed edge; delivers the rest."""

    def __init__(self, plan, transport, drop_edge):
        super().__init__(plan, transport)
        self._drop_edge = drop_edge

    def deliver(self, src, dst, num_bytes, category):
        latency = self.transport.send(src, dst, num_bytes, category)
        if (src, dst) == self._drop_edge:
            return None
        return latency


class TestRequestResponse:
    def test_fault_free_rpc_charges_hops_plus_response(self):
        fabric = _fabric()
        fired = []
        delivery = fabric.request_response(
            0, 1, 3, on_request_delivered=lambda irh: fired.append(True)
        )
        assert delivery.ok
        assert fired == [True]
        assert fabric.transport.messages_attempted == 4  # 3 out + 1 back
        assert fabric.transport.meter.bytes_for(TrafficCategory.CONTROL) == (
            4 * CONTROL_MESSAGE_BYTES
        )

    def test_server_work_happens_even_when_response_lost(self):
        """The callback fires per attempt whose request legs all arrive —
        a real server does its work before its reply goes missing."""
        transport = Transport()
        fabric = MessageFabric(transport)
        policy = RetryPolicy(max_attempts=2)
        fabric.attach_faults(
            _ResponseDropInjector(
                FaultPlan(retry=policy), transport, drop_edge=(1, 0)
            )
        )
        fired = []
        delivery = fabric.request_response(
            0, 1, 1, on_request_delivered=lambda irh: fired.append(True)
        )
        assert not delivery.ok
        assert fired == [True, True]  # both attempts reached the server
        assert fabric.stats.timeouts == 2
        assert fabric.stats.retries == 1

    def test_lost_request_leg_never_reaches_server(self):
        fabric = _fabric(loss_rate=1.0, retry=RetryPolicy(max_attempts=2))
        fired = []
        delivery = fabric.request_response(
            0, 1, 2, on_request_delivered=lambda irh: fired.append(True)
        )
        assert not delivery.ok
        assert fired == []


def _drive(cloud, steps=60):
    """A deterministic request/update mix exercising every protocol."""
    results = []
    for i in range(steps):
        cache_id = i % len(cloud.caches)
        doc_id = (7 * i) % len(cloud.corpus)
        result = cloud.handle_request(cache_id, doc_id, now=float(i))
        results.append((result.outcome, result.latency_ms, result.served_by))
        if i % 5 == 4:
            cloud.handle_update((3 * i) % len(cloud.corpus), now=float(i))
        if i % 20 == 19:
            cloud.run_cycle(now=float(i))
    return results


class TestZeroFaultStructuralEquivalence:
    """A zero-fault injector is indistinguishable on the wire from none."""

    def test_dispatch_log_is_message_for_message_identical(self, small_corpus):
        bare = make_cloud(small_corpus)
        instrumented = make_cloud(small_corpus)
        instrumented.attach_faults(
            FaultInjector(NO_FAULTS, instrumented.transport)
        )
        bare_log = bare.fabric.capture_dispatches()
        faulty_log = instrumented.fabric.capture_dispatches()

        assert _drive(bare) == _drive(instrumented)

        assert len(bare_log) > 0
        assert bare_log == faulty_log
        assert all(isinstance(r, DispatchRecord) for r in bare_log)

    def test_meter_and_ledger_totals_identical(self, small_corpus):
        bare = make_cloud(small_corpus)
        instrumented = make_cloud(small_corpus)
        instrumented.attach_faults(
            FaultInjector(NO_FAULTS, instrumented.transport)
        )
        _drive(bare)
        _drive(instrumented)

        assert bare.transport.meter == instrumented.transport.meter
        assert (
            bare.transport.messages_attempted
            == instrumented.transport.messages_attempted
        )
        assert (
            bare.transport.bytes_attempted
            == instrumented.transport.bytes_attempted
        )
        assert bare.fabric.stats == instrumented.fabric.stats
        assert instrumented.retries == 0
        assert instrumented.timeouts == 0
        assert instrumented.forced_deliveries == 0

    def test_zero_fault_plan_makes_no_random_draws(self, small_corpus):
        """NO_FAULTS must never consult the RNG, or seeds would diverge."""
        cloud = make_cloud(small_corpus)
        injector = FaultInjector(NO_FAULTS, cloud.transport, seed=99)
        before = injector._rng.getstate()
        cloud.attach_faults(injector)
        _drive(cloud)
        assert injector._rng.getstate() == before

    def test_capture_can_be_stopped(self, small_corpus):
        cloud = make_cloud(small_corpus)
        log = cloud.fabric.capture_dispatches()
        cloud.handle_request(0, 5, now=1.0)
        seen = len(log)
        assert seen > 0
        cloud.fabric.stop_dispatch_capture()
        cloud.handle_request(1, 5, now=2.0)
        assert len(log) == seen


class TestTelemetryOffPathEquivalence:
    """Attaching telemetry observes the protocols without perturbing them.

    The observability layer's contract (PR 5) extends the zero-fault
    guarantee: a cloud with a `Telemetry` registry attached must produce
    the very same wire messages, outcomes, meter/ledger totals, and RNG
    draw count as a cloud with none — recording is strictly read-only.
    """

    def test_dispatch_log_and_outcomes_identical(self, small_corpus):
        from repro.observe import Telemetry

        bare = make_cloud(small_corpus)
        observed = make_cloud(small_corpus)
        observed.attach_telemetry(Telemetry())
        bare_log = bare.fabric.capture_dispatches()
        observed_log = observed.fabric.capture_dispatches()

        assert _drive(bare) == _drive(observed)

        assert len(bare_log) > 0
        assert bare_log == observed_log

    def test_meter_and_ledger_totals_identical(self, small_corpus):
        from repro.observe import Telemetry

        bare = make_cloud(small_corpus)
        observed = make_cloud(small_corpus)
        observed.attach_telemetry(Telemetry())
        _drive(bare)
        _drive(observed)

        assert bare.transport.meter == observed.transport.meter
        assert (
            bare.transport.messages_attempted
            == observed.transport.messages_attempted
        )
        assert (
            bare.transport.bytes_attempted == observed.transport.bytes_attempted
        )
        assert bare.fabric.stats == observed.fabric.stats

    def test_telemetry_makes_no_random_draws(self, small_corpus):
        """Recording must never consult the injector RNG, or seeds diverge."""
        from repro.observe import Telemetry

        cloud = make_cloud(small_corpus)
        injector = FaultInjector(NO_FAULTS, cloud.transport, seed=99)
        cloud.attach_faults(injector)
        cloud.attach_telemetry(Telemetry())
        before = injector._rng.getstate()
        _drive(cloud)
        assert injector._rng.getstate() == before

    def test_telemetry_actually_recorded(self, small_corpus):
        from repro.observe import Telemetry

        cloud = make_cloud(small_corpus)
        telemetry = Telemetry()
        cloud.attach_telemetry(telemetry)
        _drive(cloud)
        assert telemetry.counters["fabric.attempts.control"] > 0
        assert telemetry.histograms["bytes.peer_transfer"].count > 0
        assert len(telemetry.spans.spans) > 0
        assert telemetry.spans.depth == 0  # every span closed

    def test_detach_stops_recording_and_returns_registry(self, small_corpus):
        from repro.observe import Telemetry

        cloud = make_cloud(small_corpus)
        telemetry = Telemetry()
        cloud.attach_telemetry(telemetry)
        cloud.handle_request(0, 5, now=1.0)
        recorded = len(telemetry.spans.spans)
        assert recorded > 0
        detached = cloud.detach_telemetry()
        assert detached is telemetry
        assert cloud.telemetry is None
        assert cloud.fabric.telemetry is None
        cloud.handle_request(1, 5, now=2.0)
        assert len(telemetry.spans.spans) == recorded
