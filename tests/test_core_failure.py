"""Unit tests for failure resilience (lazy replication + failover)."""

import pytest

from repro.core.cloud import RequestOutcome
from repro.core.config import AssignmentScheme, CloudConfig
from repro.workload.documents import build_corpus
from tests.conftest import make_cloud


@pytest.fixture
def resilient_cloud(small_corpus):
    return make_cloud(
        small_corpus,
        num_caches=4,
        num_rings=2,
        failure_resilience=True,
    )


class TestConfigGuards:
    def test_requires_dynamic_assignment(self, small_corpus):
        with pytest.raises(ValueError):
            make_cloud(
                small_corpus,
                assignment=AssignmentScheme.STATIC,
                failure_resilience=True,
            )

    def test_injection_requires_flag(self, small_corpus):
        cloud = make_cloud(small_corpus)
        with pytest.raises(RuntimeError):
            cloud.fail_cache(0, now=1.0)
        with pytest.raises(RuntimeError):
            cloud.recover_cache(0, now=1.0)


class TestBuddies:
    def test_buddy_is_ring_successor(self, resilient_cloud):
        manager = resilient_cloud.failure_manager
        for ring in resilient_cloud.assigner.rings:
            members = ring.members
            for i, member in enumerate(members):
                assert manager.buddy_of(member) == members[(i + 1) % len(members)]


class TestFailover:
    def populate(self, cloud):
        for doc in range(20):
            cloud.handle_request(doc % 4, doc, now=float(doc) * 0.1)
        cloud.run_cycle(now=5.0)  # triggers the lazy replica sync

    def test_fail_removes_from_ring_and_scrubs_directories(self, resilient_cloud):
        self.populate(resilient_cloud)
        victim = resilient_cloud.assigner.rings[0].members[0]
        absorber = resilient_cloud.fail_cache(victim, now=6.0)
        assert victim not in resilient_cloud.assigner.rings[0].members
        assert absorber in resilient_cloud.assigner.rings[0].members
        for beacon in resilient_cloud.beacons.values():
            for doc in beacon.directory:
                assert victim not in beacon.directory.holders(doc)

    def test_double_fail_raises(self, resilient_cloud):
        self.populate(resilient_cloud)
        victim = resilient_cloud.assigner.rings[0].members[0]
        resilient_cloud.fail_cache(victim, now=6.0)
        with pytest.raises(ValueError):
            resilient_cloud.fail_cache(victim, now=7.0)

    def test_requests_survive_beacon_failure(self, resilient_cloud):
        self.populate(resilient_cloud)
        victim = resilient_cloud.assigner.rings[0].members[0]
        resilient_cloud.fail_cache(victim, now=6.0)
        # Every document is still servable from a live cache.
        survivors = [c for c in range(4) if c != victim]
        for doc in range(20):
            requester = survivors[doc % 3]
            result = resilient_cloud.handle_request(requester, doc, now=7.0 + doc)
            assert result.outcome in (
                RequestOutcome.LOCAL_HIT,
                RequestOutcome.CLOUD_HIT,
                RequestOutcome.ORIGIN_FETCH,
            )

    def test_replica_preserves_cloud_hits_for_surviving_copies(self, resilient_cloud):
        """Documents held by survivors stay cloud-resolvable after the
        beacon holding their lookup records dies (the replica's purpose)."""
        self.populate(resilient_cloud)
        victim = resilient_cloud.assigner.rings[0].members[0]
        # Find a doc whose beacon is the victim but whose holders survive.
        target = None
        for doc in range(20):
            if resilient_cloud.beacon_for_doc(doc) != victim:
                continue
            holders = resilient_cloud.holders_of(doc) - {victim}
            if holders:
                target = (doc, holders)
                break
        if target is None:
            pytest.skip("seed produced no victim-beaconed surviving document")
        doc, holders = target
        resilient_cloud.fail_cache(victim, now=6.0)
        requester = next(
            c for c in range(4) if c != victim and c not in holders
        )
        result = resilient_cloud.handle_request(requester, doc, now=7.0)
        assert result.outcome is RequestOutcome.CLOUD_HIT

    def test_update_path_survives_failure(self, resilient_cloud):
        self.populate(resilient_cloud)
        victim = resilient_cloud.assigner.rings[0].members[0]
        resilient_cloud.fail_cache(victim, now=6.0)
        for doc in range(20):
            resilient_cloud.handle_update(doc, now=8.0)
        # Survivors holding copies must all be fresh.
        for cache in resilient_cloud.caches:
            if not cache.alive:
                continue
            for doc in range(20):
                copy = cache.copy_of(doc)
                if copy is not None:
                    assert copy.version == 1


class TestRecovery:
    def test_recover_rejoins_ring(self, resilient_cloud):
        for doc in range(20):
            resilient_cloud.handle_request(doc % 4, doc, now=float(doc) * 0.1)
        resilient_cloud.run_cycle(now=5.0)
        victim = resilient_cloud.assigner.rings[0].members[0]
        resilient_cloud.fail_cache(victim, now=6.0)
        resilient_cloud.recover_cache(victim, now=10.0)
        assert victim in resilient_cloud.assigner.rings[0].members
        assert resilient_cloud.caches[victim].alive
        # The recovered node owns a sub-range and can serve beacon duties.
        arc = resilient_cloud.assigner.rings[0].arc_of(victim)
        assert arc.width >= 1

    def test_recover_non_failed_raises(self, resilient_cloud):
        with pytest.raises(ValueError):
            resilient_cloud.recover_cache(0, now=1.0)

    def test_requests_work_after_recovery(self, resilient_cloud):
        for doc in range(20):
            resilient_cloud.handle_request(doc % 4, doc, now=float(doc) * 0.1)
        resilient_cloud.run_cycle(now=5.0)
        victim = resilient_cloud.assigner.rings[0].members[0]
        resilient_cloud.fail_cache(victim, now=6.0)
        resilient_cloud.recover_cache(victim, now=10.0)
        for doc in range(20):
            result = resilient_cloud.handle_request(victim, doc, now=11.0 + doc)
            assert result.outcome in (
                RequestOutcome.CLOUD_HIT,
                RequestOutcome.ORIGIN_FETCH,
                RequestOutcome.LOCAL_HIT,
            )

    def test_directory_consistency_after_recovery(self, resilient_cloud):
        """Directory holders must match ground truth after fail + recover."""
        for doc in range(20):
            resilient_cloud.handle_request(doc % 4, doc, now=float(doc) * 0.1)
        resilient_cloud.run_cycle(now=5.0)
        victim = resilient_cloud.assigner.rings[0].members[0]
        resilient_cloud.fail_cache(victim, now=6.0)
        resilient_cloud.recover_cache(victim, now=10.0)
        resilient_cloud.run_cycle(now=15.0)
        for doc in range(20):
            beacon = resilient_cloud.beacon_for_doc(doc)
            recorded = resilient_cloud.beacons[beacon].directory.holders(doc)
            truth = resilient_cloud.holders_of(doc)
            # Directory may have scrubbed entries (conservative), but must
            # never claim a holder that does not hold the document.
            assert recorded <= truth | {victim}


class TestLazySyncCounters:
    def test_sync_runs_each_cycle(self, resilient_cloud):
        resilient_cloud.run_cycle(now=5.0)
        resilient_cloud.run_cycle(now=10.0)
        assert resilient_cloud.failure_manager.syncs == 2

    def test_failover_counter(self, resilient_cloud):
        resilient_cloud.run_cycle(now=5.0)
        victim = resilient_cloud.assigner.rings[0].members[0]
        resilient_cloud.fail_cache(victim, now=6.0)
        assert resilient_cloud.failure_manager.failovers == 1


class TestOverlappingFailures:
    """Replicas are physical: they live at the buddy and die with it."""

    @pytest.fixture
    def wide_cloud(self, small_corpus):
        # 6 caches / 2 rings -> 3 members per ring: two members of the
        # same ring can fail while the ring stays serviceable.
        return make_cloud(
            small_corpus, num_caches=6, num_rings=2, failure_resilience=True
        )

    def populate(self, cloud):
        for doc in range(30):
            cloud.handle_request(doc % len(cloud.caches), doc, now=float(doc) * 0.1)
        cloud.run_cycle(now=5.0)  # lazy replica sync

    def test_buddy_crash_destroys_hosted_replicas(self, wide_cloud):
        self.populate(wide_cloud)
        manager = wide_cloud.failure_manager
        ring = wide_cloud.assigner.rings[0]
        victim = ring.members[0]
        buddy = manager.buddy_of(victim)
        wide_cloud.fail_cache(buddy, now=6.0)
        # The buddy held the victim's replica; the victim's entry is gone.
        assert victim not in manager._replicas
        assert manager.replicas_lost >= 1

    def test_victim_failing_after_buddy_installs_nothing(self, wide_cloud):
        self.populate(wide_cloud)
        manager = wide_cloud.failure_manager
        ring = wide_cloud.assigner.rings[0]
        victim = ring.members[0]
        buddy = manager.buddy_of(victim)
        wide_cloud.fail_cache(buddy, now=6.0)
        installed_before = manager.stale_entries_installed
        wide_cloud.fail_cache(victim, now=7.0)
        # No replica survived the buddy crash, so the absorber gets nothing.
        assert manager.stale_entries_installed == installed_before

    def test_two_failures_same_ring_still_serves(self, wide_cloud):
        self.populate(wide_cloud)
        ring = wide_cloud.assigner.rings[0]
        first, second = ring.members[0], ring.members[1]
        wide_cloud.fail_cache(first, now=6.0)
        wide_cloud.fail_cache(second, now=7.0)
        assert len(ring.members) == 1
        live = next(c.cache_id for c in wide_cloud.caches if c.alive)
        for doc in range(10):
            result = wide_cloud.handle_request(live, doc, now=8.0 + doc)
            assert result is not None

    def test_last_ring_member_refuses_to_fail(self, wide_cloud):
        self.populate(wide_cloud)
        ring = wide_cloud.assigner.rings[0]
        first, second = ring.members[0], ring.members[1]
        wide_cloud.fail_cache(first, now=6.0)
        wide_cloud.fail_cache(second, now=7.0)
        survivor = ring.members[0]
        with pytest.raises(ValueError):
            wide_cloud.fail_cache(survivor, now=8.0)
        # The refusal must not have mutated anything.
        assert wide_cloud.caches[survivor].alive
        assert survivor in ring.members

    def test_buddy_failure_right_after_recovery(self, wide_cloud):
        """Recovery does not re-establish the replica — only the next sync
        does — so a buddy crash in that window loses exactly the replicas
        the buddy still hosted, and the freshly recovered node is not
        among them."""
        self.populate(wide_cloud)
        manager = wide_cloud.failure_manager
        ring = wide_cloud.assigner.rings[0]
        victim = ring.members[0]
        buddy = manager.buddy_of(victim)
        wide_cloud.fail_cache(victim, now=6.0)
        wide_cloud.recover_cache(victim, now=7.0)
        assert victim not in manager._replicas
        held_at_buddy = [
            owner
            for owner, (host, _) in manager._replicas.items()
            if host == buddy
        ]
        assert victim not in held_at_buddy
        lost_before = manager.replicas_lost
        wide_cloud.fail_cache(buddy, now=8.0)
        assert manager.replicas_lost - lost_before == len(held_at_buddy)
        # The next sync after the buddy recovers re-covers everyone.
        wide_cloud.recover_cache(buddy, now=9.0)
        wide_cloud.run_cycle(now=10.0)
        assert victim in manager._replicas

    def test_failure_during_recovery_window(self, wide_cloud):
        """A second member fails before the first one's replica re-syncs."""
        self.populate(wide_cloud)
        manager = wide_cloud.failure_manager
        ring = wide_cloud.assigner.rings[0]
        first = ring.members[0]
        wide_cloud.fail_cache(first, now=6.0)
        wide_cloud.recover_cache(first, now=7.0)
        # No sync has run since recovery: the recovered node has no fresh
        # replica, so a failure now must fall back to an empty install.
        assert first not in manager._replicas
        installed_before = manager.stale_entries_installed
        wide_cloud.fail_cache(first, now=8.0)
        assert manager.stale_entries_installed == installed_before
        for doc in range(10):
            requester = next(c.cache_id for c in wide_cloud.caches if c.alive)
            assert wide_cloud.handle_request(requester, doc, now=9.0 + doc)
