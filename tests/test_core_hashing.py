"""Unit tests for URL hashing and assigners."""

import pytest

from repro.core.hashing import (
    DynamicHashAssigner,
    StaticHashAssigner,
    irh_value,
    ring_index,
    url_hash,
)
from repro.core.ring import BeaconRing


class TestUrlHash:
    def test_deterministic(self):
        assert url_hash("http://a/x") == url_hash("http://a/x")

    def test_distinct_urls_differ(self):
        assert url_hash("http://a/x") != url_hash("http://a/y")

    def test_salt_changes_hash(self):
        assert url_hash("u", b"s1:") != url_hash("u", b"s2:")

    def test_128_bit_range(self):
        assert 0 <= url_hash("u") < 2**128


class TestTwoStepMapping:
    def test_ring_index_in_range(self):
        for i in range(100):
            assert 0 <= ring_index(f"url{i}", 7) < 7

    def test_irh_value_in_range(self):
        for i in range(100):
            assert 0 <= irh_value(f"url{i}", 1000) < 1000

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            ring_index("u", 0)
        with pytest.raises(ValueError):
            irh_value("u", 0)

    def test_ring_and_irh_are_decorrelated(self):
        """Salted streams: ring index must not be a function of IrH mod rings."""
        pairs = {(ring_index(f"u{i}", 4), irh_value(f"u{i}", 4)) for i in range(400)}
        # If correlated, only ~4 distinct pairs would appear; decorrelated
        # streams produce nearly all 16 combinations.
        assert len(pairs) == 16

    def test_roughly_uniform_ring_distribution(self):
        counts = [0] * 5
        for i in range(5000):
            counts[ring_index(f"http://doc/{i}", 5)] += 1
        for count in counts:
            assert 800 <= count <= 1200


class TestStaticHashAssigner:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            StaticHashAssigner([])

    def test_assignment_stable(self):
        assigner = StaticHashAssigner([0, 1, 2, 3])
        url = "http://origin/doc/7.html"
        assert assigner.beacon_for(url) == assigner.beacon_for(url)

    def test_assignment_covers_members_roughly_uniformly(self):
        assigner = StaticHashAssigner(list(range(10)))
        counts = [0] * 10
        for i in range(5000):
            counts[assigner.beacon_for(f"http://doc/{i}")] += 1
        for count in counts:
            assert 350 <= count <= 650

    def test_members_and_hops(self):
        assigner = StaticHashAssigner([3, 5])
        assert assigner.members() == [3, 5]
        assert assigner.discovery_hops("u") == 1

    def test_non_contiguous_cache_ids(self):
        assigner = StaticHashAssigner([10, 20, 30])
        assert assigner.beacon_for("u") in (10, 20, 30)


class TestDynamicHashAssigner:
    def make(self, num_rings=3, ring_size=2, intra_gen=100):
        rings = [
            BeaconRing(
                [r * ring_size + i for i in range(ring_size)], intra_gen
            )
            for r in range(num_rings)
        ]
        return DynamicHashAssigner(rings, intra_gen)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DynamicHashAssigner([], 100)

    def test_two_step_discovery(self):
        assigner = self.make()
        url = "http://origin/doc/1.html"
        ring = assigner.ring_of(url)
        beacon = assigner.beacon_for(url)
        assert beacon in ring.members

    def test_members_union_of_rings(self):
        assigner = self.make(num_rings=2, ring_size=3)
        assert assigner.members() == [0, 1, 2, 3, 4, 5]

    def test_assignment_follows_sub_range_moves(self):
        assigner = self.make(num_rings=1, ring_size=2, intra_gen=10)
        ring = assigner.rings[0]
        url = "http://origin/doc/42.html"
        irh = irh_value(url, 10)
        before = assigner.beacon_for(url)
        assert before == ring.owner_of(irh)
        # Force all load onto `before` so its sub-range shrinks hard.
        per_irh = {k: (100.0 if ring.owner_of(k) == before else 0.0) for k in range(10)}
        loads = {m: sum(per_irh[k] for k in ring.arc_of(m).values()) for m in ring.members}
        ring.rebalance(loads, per_irh)
        assert assigner.beacon_for(url) == ring.owner_of(irh)

    def test_hops_is_one(self):
        assert self.make().discovery_hops("u") == 1
