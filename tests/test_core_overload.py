"""The overload model: bounded queues, admission control, degradation.

Four layers of coverage:

1. Unit tests of :class:`~repro.core.overload.OverloadConfig` validation,
   :class:`~repro.core.overload.NodeQueue` (including the ``capacity=0``
   and ``capacity=1`` boundaries), and the controller's watermark
   hysteresis (including the degenerate equal-watermark flapping case).
2. Fabric integration: queueing delay accrues into ``Delivery.latency``,
   a full queue rejects like a loss (feeding the existing retry ladder),
   and — the no-double-penalty regression — a rejected attempt accrues
   timeout/backoff only, never its would-be service time, while a
   delayed-but-delivered message accrues queue delay and no timeout.
3. The interned ``DELIVERED_FREE`` singleton: frozen against mutation,
   and value-equal to a slow-path zero-latency delivery.
4. Cloud integration: the ``REJECTED`` ingress outcome, shed lookups
   degrading to origin-direct, the ``engaged``-gated resilience summary,
   and the monitor's overload series.
"""

import dataclasses

import pytest

from repro.core.fabric import DELIVERED_FREE, Delivery, MessageFabric
from repro.core.overload import (
    CLIENT_REQUEST,
    ZERO_COST_OVERLOAD,
    NodeQueue,
    OverloadConfig,
    OverloadController,
)
from repro.core.node import MINUTES_TO_MS, RequestOutcome
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, RetryPolicy
from repro.network.bandwidth import TrafficCategory
from repro.network.transport import Transport
from tests.conftest import make_cloud


class TestOverloadConfig:
    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError):
            OverloadConfig(queue_capacity=-1)

    def test_rejects_negative_costs(self):
        with pytest.raises(ValueError):
            OverloadConfig(service_ms=-1.0)
        with pytest.raises(ValueError):
            OverloadConfig(service_ms_per_kb=-0.5)

    def test_rejects_unknown_category_override(self):
        with pytest.raises(ValueError):
            OverloadConfig(category_service_ms=(("bogus", 1.0),))

    def test_rejects_inverted_watermarks(self):
        with pytest.raises(ValueError):
            OverloadConfig(shed_highwater=2, shed_lowwater=5)

    def test_service_minutes_flat_override_and_per_kb(self):
        config = OverloadConfig(
            service_ms=60.0,
            service_ms_per_kb=30.0,
            category_service_ms=(
                (TrafficCategory.CONTROL.value, 120.0),
                (CLIENT_REQUEST, 240.0),
            ),
        )
        # Flat cost for a category with no override, plus the per-KiB term.
        assert config.service_minutes(
            TrafficCategory.PEER_TRANSFER.value, 2048
        ) == pytest.approx((60.0 + 2 * 30.0) / 60_000.0)
        # An override replaces the flat term; per-KiB still applies.
        assert config.service_minutes(
            TrafficCategory.CONTROL.value, 1024
        ) == pytest.approx((120.0 + 30.0) / 60_000.0)
        # The client-request pseudo-category shares the override table.
        assert config.service_minutes(CLIENT_REQUEST, 0) == pytest.approx(
            240.0 / 60_000.0
        )


class TestNodeQueue:
    def test_capacity_zero_rejects_everything(self):
        queue = NodeQueue(0)
        assert queue.admit(0.0, 1.0) is None
        assert queue.depth() == 0

    def test_capacity_one_boundary(self):
        queue = NodeQueue(1)
        assert queue.admit(0.0, 1.0) == pytest.approx(1.0)
        # The single slot is occupied until its service completes.
        assert queue.admit(0.0, 1.0) is None
        queue.drain(1.0)
        assert queue.admit(1.0, 1.0) == pytest.approx(1.0)

    def test_fifo_wait_accrues_behind_backlog(self):
        queue = NodeQueue(10)
        assert queue.admit(0.0, 2.0) == pytest.approx(2.0)
        # Second arrival waits for the first: delay = wait + own service.
        assert queue.admit(0.0, 3.0) == pytest.approx(5.0)
        # After an idle gap the server is free again — no carried wait.
        queue.drain(10.0)
        assert queue.depth() == 0
        assert queue.admit(10.0, 1.0) == pytest.approx(1.0)

    def test_drain_evaporates_only_completed_work(self):
        queue = NodeQueue(10)
        queue.admit(0.0, 1.0)  # completes at 1.0
        queue.admit(0.0, 1.0)  # completes at 2.0
        queue.drain(1.5)
        assert queue.depth() == 1


class TestControllerPolicy:
    def _controller(self, **kwargs) -> OverloadController:
        return OverloadController(OverloadConfig(**kwargs))

    def test_exempt_node_never_queues_or_sheds(self):
        controller = self._controller(
            queue_capacity=0, shed_highwater=0, shed_lowwater=0
        )
        controller.exempt_node(99)
        assert controller.admit_message(99, "control", 100) == 0.0
        assert controller.depth_of(99) == 0
        assert not controller.shed_lookup(99)
        assert controller.stats.messages_rejected == 0

    def test_clock_is_monotonic(self):
        controller = self._controller()
        controller.advance(5.0)
        controller.advance(3.0)  # stale timestamps never rewind the clock
        assert controller.now == 5.0

    def test_hysteresis_enter_and_exit(self):
        controller = self._controller(
            queue_capacity=100,
            service_ms=60_000.0,  # one simulated minute per message
            shed_highwater=3,
            shed_lowwater=1,
        )
        for _ in range(3):
            controller.admit_message(5, "control", 0)
        assert controller.shed_lookup(5)  # depth 3 >= highwater
        assert controller.stats.shed_entries == 1
        # Depth 2 is between the watermarks: still shedding (hysteresis).
        controller.advance(1.5)
        assert controller.shed_peer_fetch(5)
        # Depth 1 <= lowwater: the node exits the shedding state.
        controller.advance(2.5)
        assert not controller.defer_fanout(5)
        assert controller.stats.shed_exits == 1
        assert controller.stats.lookups_shed == 1
        assert controller.stats.peer_fetches_shed == 1
        assert controller.stats.fanout_deferred == 0

    def test_equal_watermarks_flap(self):
        """Degenerate hysteresis: highwater == lowwater flaps per check."""
        controller = self._controller(
            queue_capacity=100,
            service_ms=60_000.0,
            shed_highwater=1,
            shed_lowwater=1,
        )
        controller.admit_message(5, "control", 0)  # depth stays 1
        decisions = [controller.shed_lookup(5) for _ in range(4)]
        assert decisions == [True, False, True, False]
        assert controller.stats.shed_entries == 2
        assert controller.stats.shed_exits == 2

    def test_engaged_false_for_zero_cost_controller(self):
        controller = OverloadController(ZERO_COST_OVERLOAD)
        controller.admit_message(1, "control", 100)
        controller.admit_request(2)
        assert not controller.engaged
        # Any rejection engages it.
        rejecting = self._controller(queue_capacity=0)
        rejecting.admit_request(2)
        assert rejecting.engaged

    def test_depth_sampled_at_every_arrival(self):
        controller = self._controller(queue_capacity=2, service_ms=60_000.0)
        controller.admit_message(1, "control", 0)  # sees depth 0
        controller.admit_message(1, "control", 0)  # sees depth 1
        controller.admit_message(1, "control", 0)  # sees depth 2: rejected
        assert controller.stats.queue_depth_samples == 3
        assert controller.stats.queue_depth_sum == 3
        assert controller.stats.avg_queue_depth == pytest.approx(1.0)
        assert controller.stats.messages_rejected == 1


def _service_fabric(config: OverloadConfig) -> MessageFabric:
    fabric = MessageFabric(Transport())
    fabric.attach_service(OverloadController(config))
    return fabric


class TestFabricServiceIntegration:
    def test_attach_detach_toggles_fast_path(self):
        fabric = MessageFabric(Transport())
        assert fabric._fast_path
        controller = OverloadController(OverloadConfig())
        fabric.attach_service(controller)
        assert not fabric._fast_path
        assert fabric.service is controller
        assert fabric.detach_service() is controller
        assert fabric.service is None
        assert fabric._fast_path

    def test_queue_delay_accrues_into_delivery_latency(self):
        fabric = _service_fabric(OverloadConfig(service_ms=30_000.0))
        first = fabric.send_control(0, 1)
        second = fabric.send_control(0, 1)  # same instant: waits for first
        assert first == Delivery(ok=True, latency=0.5, attempts=1)
        assert second.latency == pytest.approx(1.0)
        assert fabric.stats.rejections == 0

    def test_full_queue_rejects_best_effort_like_a_loss(self):
        fabric = _service_fabric(OverloadConfig(queue_capacity=0))
        delivery = fabric.send_control(0, 1, reliable=False)
        assert not delivery.ok
        assert delivery.attempts == 1
        assert delivery.latency == 0.0
        assert fabric.stats.rejections == 1

    def test_rejected_reliable_pays_timeouts_but_never_service_time(self):
        """No double penalty: a rejected attempt accrues the retry ladder's
        timeout/backoff, never the service time it would have needed."""
        policy = RetryPolicy(max_attempts=3)
        fabric = _service_fabric(
            # Huge service cost: if a rejected attempt were also charged
            # service time, the latency assertion below would be off by
            # ten minutes per attempt.
            OverloadConfig(queue_capacity=0, service_ms=600_000.0, retry=policy)
        )
        delivery = fabric.send_control(0, 1, reliable=True)
        assert not delivery.ok
        assert delivery.attempts == 3
        assert fabric.stats.rejections == 3
        assert fabric.stats.timeouts == 3
        expected = 3 * policy.timeout_minutes + sum(
            policy.backoff_minutes(k) for k in range(2)
        )
        assert delivery.latency == pytest.approx(expected)

    def test_delayed_delivery_is_not_a_timeout(self):
        """The other side of the no-double-penalty contract: a message
        delayed by queueing but delivered counts its queue delay and no
        timeout penalty."""
        fabric = _service_fabric(
            OverloadConfig(service_ms=30_000.0, retry=RetryPolicy())
        )
        delivery = fabric.send_control(0, 1, reliable=True)
        assert delivery.ok
        assert delivery.attempts == 1
        assert delivery.latency == pytest.approx(0.5)
        assert fabric.stats.timeouts == 0
        assert fabric.stats.retries == 0

    def test_service_retry_used_only_without_injector(self):
        transport = Transport()
        fabric = MessageFabric(transport)
        service_policy = RetryPolicy(max_attempts=5)
        fabric.attach_service(
            OverloadController(
                OverloadConfig(queue_capacity=0, retry=service_policy)
            )
        )
        assert fabric.retry_policy is service_policy
        # An attached injector's plan wins over the service config.
        plan = FaultPlan(retry=RetryPolicy(max_attempts=2))
        fabric.attach_faults(FaultInjector(plan, transport))
        assert fabric.retry_policy is plan.retry
        assert fabric.send_control(0, 1, reliable=True).attempts == 2

    def test_system_plane_bypasses_the_queues(self):
        fabric = _service_fabric(OverloadConfig(queue_capacity=0))
        fabric.send_system(0, 1, 2048, TrafficCategory.DIRECTORY_MIGRATION)
        fabric.send_system_control(0, 1)
        assert fabric.transport.messages_attempted == 2
        assert fabric.stats.rejections == 0
        assert fabric.service.stats.messages_rejected == 0

    def test_rejections_and_delays_are_metered(self):
        from repro.observe import Telemetry

        fabric = _service_fabric(
            OverloadConfig(queue_capacity=1, service_ms=30_000.0)
        )
        fabric.telemetry = Telemetry()
        fabric.send_control(0, 1)  # delayed by its own service time
        fabric.send_control(0, 1)  # queue full: rejected
        telemetry = fabric.telemetry
        assert telemetry.counters["fabric.rejected.control"] == 1
        assert telemetry.histograms["queue_delay_ms.control"].count == 1
        assert telemetry.gauges["queue_depth.1"] == 1.0


class TestDeliverySingletonFrozen:
    """The interned zero-latency Delivery cannot be mutated in place."""

    def test_mutation_raises_frozen_instance_error(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            DELIVERED_FREE.ok = False
        with pytest.raises(dataclasses.FrozenInstanceError):
            DELIVERED_FREE.latency = 1.0

    def test_fast_and_slow_path_zero_latency_deliveries_compare_equal(self):
        fast = MessageFabric(Transport())
        slow = MessageFabric(Transport())
        slow.capture_dispatches()  # forces the general dispatch path
        fast_delivery = fast.send_control(0, 1)
        slow_delivery = slow.send_control(0, 1)
        assert fast_delivery is DELIVERED_FREE
        assert slow_delivery is not DELIVERED_FREE
        assert slow_delivery == fast_delivery == Delivery(True, 0.0, 1)


class TestCloudOverload:
    def test_attach_is_idempotent_and_detach_returns_controller(
        self, small_corpus
    ):
        cloud = make_cloud(small_corpus)
        controller = cloud.attach_overload(OverloadConfig())
        assert cloud.attach_overload(OverloadConfig()) is controller
        assert cloud.fabric.service is controller
        assert cloud.detach_overload() is controller
        assert cloud.overload is None
        assert cloud.fabric.service is None

    def test_capacity_zero_rejects_every_client_request(self, small_corpus):
        cloud = make_cloud(small_corpus)
        cloud.attach_overload(OverloadConfig(queue_capacity=0))
        result = cloud.handle_request(0, 5, now=1.0)
        assert result.outcome is RequestOutcome.REJECTED
        assert result.latency_ms == 0.0
        assert cloud.requests_handled == 1
        # A turned-away client never reached the cache: no request counted,
        # no frequency observed, no miss-path traffic.
        assert cloud.caches[0].stats.requests == 0
        assert cloud.overload.stats.requests_rejected == 1

    def test_ingress_queue_delay_reaches_the_client_latency(
        self, small_corpus
    ):
        cloud = make_cloud(small_corpus)
        cloud.attach_overload(
            OverloadConfig(
                category_service_ms=((CLIENT_REQUEST, 60_000.0),),
            )
        )
        first = cloud.handle_request(0, 5, now=0.0)
        second = cloud.handle_request(0, 5, now=0.0)  # local hit, queued
        assert second.outcome is RequestOutcome.LOCAL_HIT
        # Two same-instant arrivals: the second waits a full service time
        # behind the first, then pays its own (2 min total, in ms).
        assert second.latency_ms == pytest.approx(2.0 * MINUTES_TO_MS)
        assert first.latency_ms >= 1.0 * MINUTES_TO_MS

    def test_saturated_beacon_sheds_lookup_to_origin_direct(
        self, small_corpus
    ):
        cloud = make_cloud(small_corpus)
        controller = cloud.attach_overload(
            OverloadConfig(
                queue_capacity=10,
                service_ms=60_000.0,
                shed_highwater=2,
                shed_lowwater=0,
            )
        )
        doc_id = 5
        beacon_id = cloud.beacon_for_doc(doc_id)
        requester = (beacon_id + 1) % len(cloud.caches)
        for _ in range(3):
            controller.admit_message(beacon_id, "control", 0)
        result = cloud.handle_request(requester, doc_id, now=0.0)
        assert result.outcome is RequestOutcome.OVERLOAD_ORIGIN_FALLBACK
        assert result.served_by == cloud.origin.node_id
        assert controller.stats.lookups_shed == 1
        # The client was served: shedding degrades, it does not reject.
        assert cloud.caches[requester].storage.get(doc_id) is not None

    def test_origin_is_exempt_from_queueing(self, small_corpus):
        cloud = make_cloud(small_corpus)
        controller = cloud.attach_overload(OverloadConfig(queue_capacity=0))
        assert controller.admit_message(
            cloud.origin.node_id, "origin_fetch", 4096
        ) == 0.0
        assert controller.stats.messages_rejected == 0

    def test_resilience_summary_gated_on_engagement(self, small_corpus):
        quiet = make_cloud(small_corpus)
        quiet.attach_overload(ZERO_COST_OVERLOAD)
        quiet.handle_request(0, 5, now=1.0)
        assert not any(
            key.startswith("overload_") for key in quiet.resilience_summary()
        )

        loud = make_cloud(small_corpus)
        loud.attach_overload(OverloadConfig(queue_capacity=0))
        loud.handle_request(0, 5, now=1.0)
        summary = loud.resilience_summary()
        assert summary["overload_requests_rejected"] == 1.0


class TestMonitorOverloadSeries:
    def test_series_present_only_with_controller_attached(self, small_corpus):
        from repro.metrics.collector import CloudMonitor
        from repro.simulation.engine import Simulator

        bare = make_cloud(small_corpus)
        monitor = CloudMonitor(bare, Simulator(), period=1.0)
        assert "rejection_rate" not in monitor.series

        cloud = make_cloud(small_corpus)
        cloud.attach_overload(OverloadConfig(queue_capacity=0))
        simulator = Simulator()
        monitor = CloudMonitor(cloud, simulator, period=1.0)
        monitor.start()
        simulator.schedule_at(
            0.5, lambda: cloud.handle_request(0, 5, now=0.5)
        )
        simulator.run_until(2.5)
        # Window 1 saw one arrival, rejected; window 2 saw none.
        assert monitor.series["rejection_rate"].items()[0][1] == 1.0
        assert monitor.series["rejection_rate"].items()[1][1] == 0.0
        assert len(monitor.series["avg_queue_depth"]) == 2
        assert len(monitor.series["shed_rate"]) == 2
