"""Unit tests for placement policies."""

import pytest

from repro.core.config import CloudConfig, PlacementScheme, UtilityWeights
from repro.core.placement import (
    AdHocPlacement,
    BeaconPlacement,
    UtilityPlacement,
    make_placement,
)
from repro.core.utility import PlacementContext, UtilityComputer


def make_context(cache_id=0, beacon_id=1, **overrides):
    defaults = dict(
        cache_id=cache_id,
        doc_id=1,
        size_bytes=100,
        now=0.0,
        beacon_id=beacon_id,
        existing_holders=frozenset(),
        local_access_rate=1.0,
        cache_mean_rate=1.0,
        update_rate=0.0,
        expected_residence_new=None,
        min_residence_existing=None,
    )
    defaults.update(overrides)
    return PlacementContext(**defaults)


class TestAdHoc:
    def test_always_stores(self):
        policy = AdHocPlacement()
        assert policy.should_store(make_context())
        assert policy.should_store(make_context(existing_holders=frozenset(range(9))))
        assert policy.name == "ad_hoc"


class TestBeacon:
    def test_stores_only_at_beacon(self):
        policy = BeaconPlacement()
        assert policy.should_store(make_context(cache_id=1, beacon_id=1))
        assert not policy.should_store(make_context(cache_id=0, beacon_id=1))
        assert policy.name == "beacon"


class TestUtility:
    def test_delegates_to_computer(self):
        weights = UtilityWeights(afc=0.0, dai=1.0, dscc=0.0, cmc=0.0)
        policy = UtilityPlacement(UtilityComputer(weights, threshold=0.5))
        assert policy.should_store(make_context())  # first copy, dai = 1
        assert not policy.should_store(
            make_context(existing_holders=frozenset({1, 2, 3}))
        )
        assert policy.name == "utility"


class TestFactory:
    def test_ad_hoc(self):
        config = CloudConfig(placement=PlacementScheme.AD_HOC)
        assert isinstance(make_placement(config), AdHocPlacement)

    def test_beacon(self):
        config = CloudConfig(placement=PlacementScheme.BEACON)
        assert isinstance(make_placement(config), BeaconPlacement)

    def test_utility_wired_with_config_weights(self):
        config = CloudConfig(
            placement=PlacementScheme.UTILITY,
            utility_weights=UtilityWeights(afc=1.0, dai=0.0, dscc=0.0, cmc=0.0),
            utility_threshold=0.3,
        )
        policy = make_placement(config)
        assert isinstance(policy, UtilityPlacement)
        assert policy.computer.threshold == 0.3
        assert policy.computer.weights.afc == 1.0


class TestExpirationAge:
    def make(self, beta=1.0):
        from repro.core.placement import ExpirationAgePlacement

        return ExpirationAgePlacement(beta=beta)

    def test_rejects_bad_beta(self):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            self.make(beta=0.0)

    def test_never_updated_doc_is_stored(self):
        policy = self.make()
        assert policy.should_store(make_context(update_rate=0.0))

    def test_long_lived_copy_stored(self):
        # Accessed 10x per update: expiration age >> inter-access time.
        policy = self.make()
        assert policy.should_store(
            make_context(local_access_rate=10.0, update_rate=1.0)
        )

    def test_short_lived_copy_rejected(self):
        policy = self.make()
        assert not policy.should_store(
            make_context(local_access_rate=1.0, update_rate=10.0)
        )

    def test_beta_scales_the_bar(self):
        strict = self.make(beta=5.0)
        lenient = self.make(beta=0.2)
        ctx = make_context(local_access_rate=2.0, update_rate=1.0)
        assert lenient.should_store(ctx)
        assert not strict.should_store(ctx)

    def test_factory(self):
        from repro.core.placement import ExpirationAgePlacement

        config = CloudConfig(placement=PlacementScheme.EXPIRATION_AGE)
        assert isinstance(make_placement(config), ExpirationAgePlacement)
