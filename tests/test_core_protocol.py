"""Unit tests for protocol message types."""

from repro.core.directory import DIRECTORY_ENTRY_BYTES
from repro.core.protocol import (
    DirectoryTransfer,
    LookupRequest,
    LookupResponse,
    ProtocolTrace,
    RangeAnnouncement,
    UpdateNotice,
)
from repro.network.transport import CONTROL_MESSAGE_BYTES
from tests.conftest import make_cloud


class TestSizes:
    def test_lookup_messages_are_control_sized(self):
        assert LookupRequest(0, 1, 2).size_bytes == CONTROL_MESSAGE_BYTES
        assert (
            LookupResponse(1, 0, 2, frozenset({3})).size_bytes
            == CONTROL_MESSAGE_BYTES
        )

    def test_update_notice_body_vs_invalidation(self):
        with_body = UpdateNotice(1, 2, 0, carries_body=True, body_bytes=5000)
        bare = UpdateNotice(1, 2, 0, carries_body=False, body_bytes=5000)
        assert with_body.size_bytes == 5000
        assert bare.size_bytes == CONTROL_MESSAGE_BYTES

    def test_directory_transfer_scales_with_entries(self):
        small = DirectoryTransfer(0, 1, entry_count=1)
        large = DirectoryTransfer(0, 1, entry_count=100)
        assert small.size_bytes >= CONTROL_MESSAGE_BYTES
        assert large.size_bytes == 100 * DIRECTORY_ENTRY_BYTES

    def test_empty_directory_transfer_has_floor(self):
        assert DirectoryTransfer(0, 1, 0).size_bytes == CONTROL_MESSAGE_BYTES


class TestProtocolTrace:
    def test_disabled_trace_drops_messages(self):
        trace = ProtocolTrace(enabled=False)
        trace.emit(LookupRequest(0, 1, 2))
        assert trace.messages == []

    def test_enabled_trace_captures(self):
        trace = ProtocolTrace(enabled=True)
        trace.emit(LookupRequest(0, 1, 2))
        trace.emit(RangeAnnouncement(0, ((1, 0, 9),)))
        assert len(trace.messages) == 2

    def test_of_type_filters(self):
        trace = ProtocolTrace(enabled=True)
        trace.emit(LookupRequest(0, 1, 2))
        trace.emit(RangeAnnouncement(0, ()))
        assert len(trace.of_type(LookupRequest)) == 1
        assert len(trace.of_type(RangeAnnouncement)) == 1

    def test_clear(self):
        trace = ProtocolTrace(enabled=True)
        trace.emit(LookupRequest(0, 1, 2))
        trace.clear()
        assert trace.messages == []


class TestCloudTraceGating:
    """The cloud must not build protocol messages when capture is off.

    Message construction on the lookup/update hot paths (the per-request
    ``LookupResponse`` holder-set copy in particular) is pure
    instrumentation; these tests pin down both sides of the gate.
    """

    @staticmethod
    def _exercise(cloud):
        # Same request twice from different caches: the second lookup finds a
        # holder (LookupResponse with a non-empty set) and updates touch it.
        cloud.handle_request(0, 5, 0.0)
        cloud.handle_request(1, 5, 1.0)
        cloud.handle_update(5, 2.0)
        return cloud

    def test_disabled_capture_records_nothing(self, small_corpus):
        cloud = self._exercise(make_cloud(small_corpus, capture=False))
        assert cloud.trace.messages == []
        # The simulation itself still ran (gating must not change behavior).
        assert cloud.requests_handled == 2
        assert cloud.updates_handled == 1

    def test_enabled_capture_sees_lookup_and_update_messages(self, small_corpus):
        cloud = self._exercise(make_cloud(small_corpus, capture=True))
        assert len(cloud.trace.of_type(LookupRequest)) >= 2
        assert len(cloud.trace.of_type(LookupResponse)) >= 2
        assert len(cloud.trace.of_type(UpdateNotice)) >= 1

    def test_gating_does_not_change_outcomes(self, small_corpus):
        captured = self._exercise(make_cloud(small_corpus, capture=True))
        silent = self._exercise(make_cloud(small_corpus, capture=False))
        assert captured.aggregate_stats() == silent.aggregate_stats()
        assert captured.transport.meter == silent.transport.meter
