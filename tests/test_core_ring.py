"""Unit + property tests for beacon rings and sub-range determination.

Includes the paper's worked example (Figure 2): a 2-beacon-point ring with
IntraGen 10 and per-IrH loads summing to 500/300 must rebalance to 410/390
with full load information and to 440/360 with the CAvgLoad approximation.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ring import Arc, BeaconRing

# Per-IrH loads consistent with Figure 2: hashes 0-2 sum to 410, hash 3 = 30,
# hash 4 = 60, hashes 5-9 sum to 300 → P0(0-4) = 500, P1(5-9) = 300.
FIGURE2_LOADS = {0: 135, 1: 100, 2: 175, 3: 30, 4: 60, 5: 100, 6: 25, 7: 50, 8: 75, 9: 50}


class TestArc:
    def test_validation(self):
        with pytest.raises(ValueError):
            Arc(start=-1, width=1, intra_gen=10)
        with pytest.raises(ValueError):
            Arc(start=0, width=0, intra_gen=10)
        with pytest.raises(ValueError):
            Arc(start=0, width=11, intra_gen=10)

    def test_linear_arc(self):
        arc = Arc(start=2, width=3, intra_gen=10)
        assert arc.end == 4
        assert not arc.wraps
        assert arc.spans() == [(2, 4)]
        assert arc.values() == [2, 3, 4]
        assert arc.contains(3) and not arc.contains(5)

    def test_wrapped_arc(self):
        arc = Arc(start=8, width=4, intra_gen=10)
        assert arc.end == 1
        assert arc.wraps
        assert arc.spans() == [(8, 9), (0, 1)]
        assert arc.values() == [8, 9, 0, 1]
        assert arc.contains(9) and arc.contains(0) and not arc.contains(2)

    def test_contains_rejects_out_of_space(self):
        arc = Arc(start=0, width=10, intra_gen=10)
        assert not arc.contains(10)
        assert not arc.contains(-1)


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            BeaconRing([], 100)

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            BeaconRing([1, 1], 100)

    def test_rejects_tiny_intra_gen(self):
        with pytest.raises(ValueError):
            BeaconRing([1, 2, 3], 2)

    def test_rejects_bad_capability(self):
        with pytest.raises(ValueError):
            BeaconRing([1, 2], 100, {1: 0.0})

    def test_equal_initial_split(self):
        ring = BeaconRing([10, 20], 10)
        assert ring.arc_of(10).spans() == [(0, 4)]
        assert ring.arc_of(20).spans() == [(5, 9)]

    def test_uneven_split_gives_remainder_to_first(self):
        ring = BeaconRing([1, 2, 3], 10)
        widths = [ring.arc_of(m).width for m in (1, 2, 3)]
        assert widths == [4, 3, 3]

    def test_arcs_partition_the_space(self):
        ring = BeaconRing([1, 2, 3, 4], 97)
        owners = ring.owner_table()
        assert len(owners) == 97
        for member in (1, 2, 3, 4):
            assert ring.arc_of(member).width == owners.count(member)


class TestOwnerLookup:
    def test_owner_matches_arcs(self):
        ring = BeaconRing([5, 6, 7], 30)
        for irh in range(30):
            owner = ring.owner_of(irh)
            assert ring.arc_of(owner).contains(irh)

    def test_out_of_range_raises(self):
        ring = BeaconRing([1], 10)
        with pytest.raises(ValueError):
            ring.owner_of(10)


class TestFigure2WorkedExample:
    """The paper's own numbers, both information regimes."""

    def test_full_load_information_rebalances_to_410_390(self):
        ring = BeaconRing([0, 1], 10)
        result = ring.rebalance({0: 500.0, 1: 300.0}, per_irh_loads=FIGURE2_LOADS)
        assert result.changed
        assert ring.arc_of(0).spans() == [(0, 2)]
        assert result.predicted_loads[0] == pytest.approx(410.0)
        assert result.predicted_loads[1] == pytest.approx(390.0)

    def test_average_approximation_rebalances_to_440_360(self):
        ring = BeaconRing([0, 1], 10)
        result = ring.rebalance({0: 500.0, 1: 300.0}, per_irh_loads=None)
        assert result.changed
        assert ring.arc_of(0).spans() == [(0, 3)]
        # Under the approximation each of P0's hashes is estimated at 100, so
        # exactly one hash moves; with the true loads the outcome is 440/360.
        true_p0 = sum(FIGURE2_LOADS[h] for h in range(0, 4))
        true_p1 = sum(FIGURE2_LOADS[h] for h in range(4, 10))
        assert true_p0 == 440 and true_p1 == 360

    def test_moves_describe_the_transfer(self):
        ring = BeaconRing([0, 1], 10)
        result = ring.rebalance({0: 500.0, 1: 300.0}, per_irh_loads=FIGURE2_LOADS)
        assert (3, 4, 0, 1) in result.moves


class TestRebalanceBehaviour:
    def test_single_member_never_changes(self):
        ring = BeaconRing([9], 50)
        result = ring.rebalance({9: 1000.0})
        assert not result.changed
        assert ring.arc_of(9).width == 50

    def test_zero_load_is_stable(self):
        ring = BeaconRing([1, 2], 10)
        result = ring.rebalance({1: 0.0, 2: 0.0})
        assert not result.changed

    def test_balanced_loads_are_stable(self):
        ring = BeaconRing([1, 2], 10)
        per_irh = {k: 10.0 for k in range(10)}
        result = ring.rebalance({1: 50.0, 2: 50.0}, per_irh)
        assert not result.changed

    def test_capability_weighted_shares(self):
        # Member 1 is twice as capable: it should end up with ~2/3 of load.
        ring = BeaconRing([1, 2], 12, {1: 2.0, 2: 1.0})
        per_irh = {k: 10.0 for k in range(12)}  # uniform, total 120
        ring.rebalance({1: 60.0, 2: 60.0}, per_irh)
        assert ring.arc_of(1).width == 8  # 80 load ≈ 2/3 of 120
        assert ring.arc_of(2).width == 4

    def test_hot_value_blocked_linearly_escapes_around_the_circle(self):
        """The circularity rationale: a hot IrH at the interior boundary.

        Member B holds a hot value at the very start of its arc plus light
        values; A cannot pull the hot value (overshoot), but B can shed its
        light *end* values around the wrap boundary to A.
        """
        ring = BeaconRing(["A", "B"], 10)
        per_irh = {k: 1.0 for k in range(10)}
        per_irh[5] = 50.0  # hot value at B's arc start
        loads = {"A": 5.0, "B": 54.0}
        result = ring.rebalance(loads, per_irh)
        assert result.changed
        # A acquired light values from B's end via the wrap boundary.
        assert result.predicted_loads["A"] > 5.0
        arc_a = ring.arc_of("A")
        assert arc_a.wraps or arc_a.width > 5

    def test_convergence_under_stationary_skew(self):
        """Iterated cycles with exact feedback converge near fair shares."""
        ring = BeaconRing([0, 1, 2, 3], 100)
        # Zipf-flavoured stationary per-IrH load.
        per_irh = {k: 1000.0 / (k + 1) for k in range(100)}
        for _ in range(12):
            loads = {}
            for member in ring.members:
                loads[member] = sum(
                    per_irh[irh] for irh in ring.arc_of(member).values()
                )
            ring.rebalance(loads, per_irh)
        final = [
            sum(per_irh[irh] for irh in ring.arc_of(m).values())
            for m in ring.members
        ]
        mean = sum(final) / len(final)
        assert max(final) / mean < 1.45  # hottest single IrH is indivisible

    def test_moves_are_consistent_with_new_ownership(self):
        ring = BeaconRing([0, 1, 2], 30)
        per_irh = {k: float(30 - k) for k in range(30)}
        loads = {
            m: sum(per_irh[irh] for irh in ring.arc_of(m).values())
            for m in ring.members
        }
        result = ring.rebalance(loads, per_irh)
        for lo, hi, src, dst in result.moves:
            for irh in range(lo, hi + 1):
                assert ring.owner_of(irh) == dst
                assert src != dst


class TestMembershipChanges:
    def test_remove_merges_into_successor(self):
        ring = BeaconRing([1, 2, 3], 30)
        absorber = ring.remove_member(2)
        assert absorber == 3
        assert ring.members == [1, 3]
        assert sum(ring.arc_of(m).width for m in ring.members) == 30

    def test_remove_last_member_wraps_to_first(self):
        ring = BeaconRing([1, 2], 10)
        absorber = ring.remove_member(2)
        assert absorber == 1
        assert ring.arc_of(1).width == 10

    def test_cannot_remove_only_member(self):
        ring = BeaconRing([1], 10)
        with pytest.raises(ValueError):
            ring.remove_member(1)

    def test_add_member_splits_donor(self):
        ring = BeaconRing([1, 3], 20)
        ring.add_member(2, 1)
        assert ring.members == [1, 2, 3]
        assert sum(ring.arc_of(m).width for m in ring.members) == 20
        # Lookup still total: every IrH has exactly one owner.
        for irh in range(20):
            ring.owner_of(irh)

    def test_add_duplicate_raises(self):
        ring = BeaconRing([1, 2], 20)
        with pytest.raises(ValueError):
            ring.add_member(1, 0)

    def test_remove_then_add_round_trip_preserves_partition(self):
        ring = BeaconRing([1, 2, 3, 4], 40)
        ring.remove_member(2)
        ring.add_member(2, 1)
        assert sorted(ring.members) == [1, 2, 3, 4]
        owners = ring.owner_table()
        for member in ring.members:
            assert owners.count(member) == ring.arc_of(member).width
        assert sum(ring.arc_of(m).width for m in ring.members) == 40


@given(
    num_members=st.integers(min_value=1, max_value=6),
    intra_gen=st.integers(min_value=6, max_value=60),
    loads=st.lists(
        st.floats(min_value=0, max_value=1e4, allow_nan=False),
        min_size=6,
        max_size=6,
    ),
    seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=80, deadline=None)
def test_rebalance_invariants(num_members, intra_gen, loads, seed):
    """Property: any rebalance preserves the partition of the IrH space."""
    import random

    rng = random.Random(seed)
    members = list(range(num_members))
    ring = BeaconRing(members, intra_gen)
    per_irh = {k: rng.uniform(0, 10) for k in range(intra_gen)}
    measured = {m: loads[i % len(loads)] for i, m in enumerate(members)}
    result = ring.rebalance(measured, per_irh)
    # Partition invariants: total width preserved, every IrH owned once.
    assert sum(ring.arc_of(m).width for m in ring.members) == intra_gen
    owners = ring.owner_table()
    for member in members:
        assert owners.count(member) == ring.arc_of(member).width
        assert ring.arc_of(member).width >= 1
    # Move spans never overlap and never name a member outside the ring.
    seen = set()
    for lo, hi, src, dst in result.moves:
        assert src in members and dst in members
        for irh in range(lo, hi + 1):
            assert irh not in seen
            seen.add(irh)
