"""Unit + property tests for the utility function."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import UtilityWeights
from repro.core.utility import PlacementContext, UtilityComponents, UtilityComputer


def make_context(**overrides):
    defaults = dict(
        cache_id=0,
        doc_id=1,
        size_bytes=1000,
        now=10.0,
        beacon_id=2,
        existing_holders=frozenset(),
        local_access_rate=1.0,
        cache_mean_rate=1.0,
        update_rate=0.0,
        expected_residence_new=None,
        min_residence_existing=None,
    )
    defaults.update(overrides)
    return PlacementContext(**defaults)


class TestComponents:
    def test_components_validated(self):
        with pytest.raises(ValueError):
            UtilityComponents(afc=1.5, dai=0.0, dscc=0.0, cmc=0.0)

    def test_afc_average_doc_is_half(self):
        computer = UtilityComputer(UtilityWeights())
        ctx = make_context(local_access_rate=2.0, cache_mean_rate=2.0)
        assert computer.components(ctx).afc == pytest.approx(0.5)

    def test_afc_hot_doc_above_half(self):
        computer = UtilityComputer(UtilityWeights())
        ctx = make_context(local_access_rate=9.0, cache_mean_rate=1.0)
        assert computer.components(ctx).afc == pytest.approx(0.9)

    def test_afc_neutral_without_signal(self):
        computer = UtilityComputer(UtilityWeights())
        ctx = make_context(local_access_rate=0.0, cache_mean_rate=0.0)
        assert computer.components(ctx).afc == 0.5

    def test_dai_first_copy_is_one(self):
        computer = UtilityComputer(UtilityWeights())
        assert computer.components(make_context()).dai == 1.0

    def test_dai_diminishes_with_replicas(self):
        computer = UtilityComputer(UtilityWeights())
        ctx = make_context(existing_holders=frozenset({1, 2, 3}))
        assert computer.components(ctx).dai == pytest.approx(0.25)

    def test_dscc_unbounded_residence_is_one(self):
        computer = UtilityComputer(UtilityWeights())
        assert computer.components(make_context()).dscc == 1.0

    def test_dscc_contended_new_copy_vs_stable_holders(self):
        computer = UtilityComputer(UtilityWeights())
        ctx = make_context(expected_residence_new=10.0, min_residence_existing=None)
        assert computer.components(ctx).dscc == 0.5

    def test_dscc_ratio(self):
        computer = UtilityComputer(UtilityWeights())
        ctx = make_context(expected_residence_new=30.0, min_residence_existing=10.0)
        assert computer.components(ctx).dscc == pytest.approx(0.75)

    def test_cmc_read_mostly_doc_near_one(self):
        computer = UtilityComputer(UtilityWeights())
        ctx = make_context(local_access_rate=99.0, update_rate=1.0)
        assert computer.components(ctx).cmc == pytest.approx(0.99)

    def test_cmc_write_mostly_doc_near_zero(self):
        computer = UtilityComputer(UtilityWeights())
        ctx = make_context(local_access_rate=1.0, update_rate=99.0)
        assert computer.components(ctx).cmc == pytest.approx(0.01)


class TestDecision:
    def test_weighted_sum(self):
        weights = UtilityWeights(afc=1.0, dai=0.0, dscc=0.0, cmc=0.0)
        computer = UtilityComputer(weights, threshold=0.5)
        hot = make_context(local_access_rate=9.0, cache_mean_rate=1.0)
        cold = make_context(local_access_rate=1.0, cache_mean_rate=9.0)
        assert computer.should_store(hot)
        assert not computer.should_store(cold)

    def test_threshold_boundary_is_strict(self):
        weights = UtilityWeights(afc=1.0, dai=0.0, dscc=0.0, cmc=0.0)
        computer = UtilityComputer(weights, threshold=0.5)
        ctx = make_context(local_access_rate=1.0, cache_mean_rate=1.0)  # afc = 0.5
        assert not computer.should_store(ctx)  # strict >

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            UtilityComputer(UtilityWeights(), threshold=1.1)

    def test_accept_rate_tracked(self):
        weights = UtilityWeights(afc=0.0, dai=1.0, dscc=0.0, cmc=0.0)
        computer = UtilityComputer(weights, threshold=0.5)
        computer.should_store(make_context())  # dai=1 → accept
        computer.should_store(
            make_context(existing_holders=frozenset({1, 2}))
        )  # dai=1/3 → reject
        assert computer.evaluations == 2
        assert computer.accepts == 1
        assert computer.accept_rate == 0.5

    def test_update_rate_suppresses_storage(self):
        """The paper's Figure 7 mechanism: higher update rate, fewer stores."""
        weights = UtilityWeights.equal_over(["afc", "dai", "cmc"])
        computer = UtilityComputer(weights, threshold=0.5)
        quiet = make_context(
            local_access_rate=1.0,
            cache_mean_rate=2.0,
            update_rate=0.1,
            existing_holders=frozenset({1, 2, 3, 4}),
        )
        churning = make_context(
            local_access_rate=1.0,
            cache_mean_rate=2.0,
            update_rate=50.0,
            existing_holders=frozenset({1, 2, 3, 4}),
        )
        assert computer.value(quiet) > computer.value(churning)


rates = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
residences = st.one_of(st.none(), st.floats(min_value=0.01, max_value=1e6))


@given(
    access=rates,
    mean=rates,
    update=rates,
    holders=st.sets(st.integers(1, 20), max_size=10),
    res_new=residences,
    res_min=residences,
)
@settings(max_examples=100, deadline=None)
def test_utility_always_in_unit_interval(
    access, mean, update, holders, res_new, res_min
):
    computer = UtilityComputer(UtilityWeights())
    ctx = make_context(
        local_access_rate=access,
        cache_mean_rate=mean,
        update_rate=update,
        existing_holders=frozenset(holders),
        expected_residence_new=res_new,
        min_residence_existing=res_min,
    )
    value = computer.value(ctx)
    assert 0.0 <= value <= 1.0
    components = computer.components(ctx)
    for name in ("afc", "dai", "dscc", "cmc"):
        assert 0.0 <= getattr(components, name) <= 1.0
