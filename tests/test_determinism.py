"""Determinism guarantees: identical inputs → bit-identical results.

A reproduction's credibility rests on runs being exactly repeatable. These
tests run complete experiments twice and require every reported statistic
to match exactly (not approximately) — any hidden global RNG, dict-order
dependence, or wall-clock leak fails them.
"""

from repro.core.config import CloudConfig, PlacementScheme
from repro.experiments.runner import run_experiment
from repro.workload.documents import build_corpus
from repro.workload.generator import SyntheticTraceGenerator, WorkloadConfig
from repro.workload.sydney import SydneyConfig, SydneyTraceGenerator


def run_once(seed=11):
    corpus = build_corpus(150, fixed_size=2048)
    generator = SyntheticTraceGenerator(
        WorkloadConfig(
            num_documents=150,
            num_caches=6,
            request_rate_per_cache=30.0,
            update_rate=15.0,
            duration_minutes=30.0,
            seed=seed,
        )
    )
    config = CloudConfig(
        num_caches=6,
        num_rings=3,
        intra_gen=200,
        cycle_length=8.0,
        placement=PlacementScheme.UTILITY,
        seed=seed,
    )
    return run_experiment(
        config, corpus, generator.requests(), generator.updates(), duration=30.0
    )


def fingerprint(result):
    return (
        result.requests,
        result.updates,
        tuple(sorted(result.beacon_loads.items())),
        result.load_stats.cov,
        result.load_stats.peak_to_mean,
        result.network_mb_per_unit,
        result.docs_stored_percent,
        result.stats.local_hits,
        result.stats.cloud_hits,
        result.stats.origin_fetches,
        result.stats.latency_total_ms,
        tuple(sorted(result.traffic.breakdown().items())),
    )


class TestExperimentDeterminism:
    def test_identical_runs_are_bit_identical(self):
        assert fingerprint(run_once()) == fingerprint(run_once())

    def test_seed_changes_the_run(self):
        assert fingerprint(run_once(seed=11)) != fingerprint(run_once(seed=12))

    def test_cloud_state_matches_across_runs(self):
        a = run_once().cloud
        b = run_once().cloud
        for cache_a, cache_b in zip(a.caches, b.caches):
            assert set(cache_a.storage) == set(cache_b.storage)
        for cache_id in a.beacons:
            dir_a = a.beacons[cache_id].directory
            dir_b = b.beacons[cache_id].directory
            assert sorted(dir_a.snapshot()) == sorted(dir_b.snapshot())
        for ring_a, ring_b in zip(a.assigner.rings, b.assigner.rings):
            assert ring_a.ranges() == ring_b.ranges()


class TestGeneratorDeterminism:
    def test_sydney_trace_bit_identical(self):
        config = SydneyConfig(
            num_documents=200,
            num_caches=4,
            peak_request_rate_per_cache=40.0,
            base_update_rate=10.0,
            duration_minutes=30.0,
            diurnal_period_minutes=30.0,
            num_epochs=2,
            drift_pool=50,
            seed=5,
        )
        a = SydneyTraceGenerator(config).build_trace()
        b = SydneyTraceGenerator(config).build_trace()
        assert a.requests == b.requests
        assert a.updates == b.updates

    def test_lazy_and_materialized_streams_agree(self):
        config = WorkloadConfig(
            num_documents=100,
            num_caches=4,
            request_rate_per_cache=20.0,
            update_rate=5.0,
            duration_minutes=20.0,
            seed=9,
        )
        lazy = list(SyntheticTraceGenerator(config).requests())
        materialized = SyntheticTraceGenerator(config).build_trace().requests
        assert lazy == materialized


class TestFigureDeterminism:
    def test_figure6_repeatable(self):
        from repro.experiments.figures import TINY_SCALE, figure6

        a = figure6(TINY_SCALE, alphas=(0.9,))
        b = figure6(TINY_SCALE, alphas=(0.9,))
        assert a.cov_static == b.cov_static
        assert a.cov_dynamic == b.cov_dynamic
