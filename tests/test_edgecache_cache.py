"""Unit tests for the edge cache node facade."""

import pytest

from repro.edgecache.cache import EdgeCache
from repro.edgecache.document import CachedDocument


class TestConstruction:
    def test_rejects_negative_id(self):
        with pytest.raises(ValueError):
            EdgeCache(-1)

    def test_rejects_non_positive_capability(self):
        with pytest.raises(ValueError):
            EdgeCache(0, capability=0.0)


class TestRequestPath:
    def test_observe_request_counts_and_tracks_frequency(self):
        cache = EdgeCache(0)
        cache.observe_request(5, 1.0)
        assert cache.stats.requests == 1
        assert cache.frequencies.rate_of(5, 1.0) > 0

    def test_serve_local_counts_hit(self):
        cache = EdgeCache(0)
        cache.admit(5, 100, 0, 0.0)
        doc = cache.serve_local(5, 2.0)
        assert isinstance(doc, CachedDocument)
        assert cache.stats.local_hits == 1

    def test_admit_counts_store(self):
        cache = EdgeCache(0)
        assert cache.admit(5, 100, 0, 0.0) == []
        assert cache.stats.stores == 1

    def test_admit_too_big_returns_none_without_store_count(self):
        cache = EdgeCache(0, capacity_bytes=50)
        assert cache.admit(5, 100, 0, 0.0) is None
        assert cache.stats.stores == 0

    def test_decline_counts_reject(self):
        cache = EdgeCache(0)
        cache.decline()
        assert cache.stats.placement_rejects == 1


class TestFreshness:
    def test_holds_fresh_semantics(self):
        cache = EdgeCache(0)
        cache.admit(5, 100, 2, 0.0)
        assert cache.holds(5)
        assert cache.holds_fresh(5, 2)
        assert cache.holds_fresh(5, 1)  # newer than required is fine
        assert not cache.holds_fresh(5, 3)

    def test_apply_update_refreshes_version(self):
        cache = EdgeCache(0)
        cache.admit(5, 100, 0, 0.0)
        assert cache.apply_update(5, 3, 1.0)
        assert cache.copy_of(5).version == 3
        assert cache.stats.updates_applied == 1

    def test_apply_update_to_absent_doc_is_noop(self):
        cache = EdgeCache(0)
        assert not cache.apply_update(5, 3, 1.0)
        assert cache.stats.updates_applied == 0

    def test_drop(self):
        cache = EdgeCache(0)
        cache.admit(5, 100, 0, 0.0)
        assert cache.drop(5, 1.0)
        assert not cache.holds(5)
        assert not cache.drop(5, 2.0)


class TestFailure:
    def test_fail_clears_storage(self):
        cache = EdgeCache(0)
        cache.admit(1, 100, 0, 0.0)
        cache.admit(2, 100, 0, 0.0)
        cache.fail(1.0)
        assert not cache.alive
        assert len(cache.storage) == 0

    def test_recover_comes_back_cold(self):
        cache = EdgeCache(0)
        cache.admit(1, 100, 0, 0.0)
        cache.fail(1.0)
        cache.recover()
        assert cache.alive
        assert not cache.holds(1)
