"""Unit tests for the in-cache document copy."""

import pytest

from repro.edgecache.document import CachedDocument


class TestValidation:
    def test_rejects_negative_doc_id(self):
        with pytest.raises(ValueError):
            CachedDocument(doc_id=-1, size_bytes=1, version=0, stored_at=0.0)

    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            CachedDocument(doc_id=0, size_bytes=0, version=0, stored_at=0.0)

    def test_rejects_negative_version(self):
        with pytest.raises(ValueError):
            CachedDocument(doc_id=0, size_bytes=1, version=-1, stored_at=0.0)


class TestBehaviour:
    def test_last_access_defaults_to_stored_at(self):
        doc = CachedDocument(doc_id=0, size_bytes=1, version=0, stored_at=7.0)
        assert doc.last_access == 7.0

    def test_touch_updates_access_state(self):
        doc = CachedDocument(doc_id=0, size_bytes=1, version=0, stored_at=0.0)
        doc.touch(5.0)
        doc.touch(9.0)
        assert doc.last_access == 9.0
        assert doc.access_count == 2

    def test_residence_time(self):
        doc = CachedDocument(doc_id=0, size_bytes=1, version=0, stored_at=3.0)
        assert doc.residence_time(10.0) == 7.0
        assert doc.residence_time(1.0) == 0.0  # clamped, never negative
