"""Unit + property tests for replacement policies."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.edgecache.replacement import (
    FIFOPolicy,
    GDSFPolicy,
    LFUPolicy,
    LRUPolicy,
    make_policy,
)

ALL_POLICIES = [LRUPolicy, FIFOPolicy, LFUPolicy, GDSFPolicy]


@pytest.mark.parametrize("policy_class", ALL_POLICIES)
class TestPolicyContract:
    """Behaviours every policy must share."""

    def test_empty_policy_has_no_victim(self, policy_class):
        assert policy_class().choose_victim() is None

    def test_insert_then_contains(self, policy_class):
        policy = policy_class()
        policy.on_insert(1, 100, 0.0)
        assert 1 in policy
        assert len(policy) == 1

    def test_double_insert_raises(self, policy_class):
        policy = policy_class()
        policy.on_insert(1, 100, 0.0)
        with pytest.raises(KeyError):
            policy.on_insert(1, 100, 1.0)

    def test_remove_forgets(self, policy_class):
        policy = policy_class()
        policy.on_insert(1, 100, 0.0)
        policy.on_remove(1)
        assert 1 not in policy
        assert policy.choose_victim() is None

    def test_access_unknown_doc_raises(self, policy_class):
        policy = policy_class()
        with pytest.raises(KeyError):
            policy.on_access(42, 0.0)

    def test_victim_is_a_tracked_doc(self, policy_class):
        policy = policy_class()
        for doc in range(5):
            policy.on_insert(doc, 10, float(doc))
        assert policy.choose_victim() in policy


class TestLRU:
    def test_evicts_least_recently_used(self):
        policy = LRUPolicy()
        for doc in (1, 2, 3):
            policy.on_insert(doc, 10, 0.0)
        policy.on_access(1, 1.0)
        assert policy.choose_victim() == 2

    def test_access_refreshes_position(self):
        policy = LRUPolicy()
        policy.on_insert(1, 10, 0.0)
        policy.on_insert(2, 10, 0.0)
        policy.on_access(1, 1.0)
        policy.on_access(2, 2.0)
        assert policy.choose_victim() == 1


class TestFIFO:
    def test_access_does_not_refresh(self):
        policy = FIFOPolicy()
        policy.on_insert(1, 10, 0.0)
        policy.on_insert(2, 10, 0.0)
        policy.on_access(1, 5.0)
        assert policy.choose_victim() == 1


class TestLFU:
    def test_evicts_least_frequent(self):
        policy = LFUPolicy()
        policy.on_insert(1, 10, 0.0)
        policy.on_insert(2, 10, 0.0)
        policy.on_access(1, 1.0)
        policy.on_access(1, 2.0)
        policy.on_access(2, 3.0)
        assert policy.choose_victim() == 2

    def test_tie_broken_by_recency(self):
        policy = LFUPolicy()
        policy.on_insert(1, 10, 0.0)
        policy.on_insert(2, 10, 1.0)
        # Equal counts: the least recently touched (doc 1) goes first.
        assert policy.choose_victim() == 1

    def test_stale_heap_entries_skipped(self):
        policy = LFUPolicy()
        policy.on_insert(1, 10, 0.0)
        policy.on_insert(2, 10, 0.0)
        for t in range(5):
            policy.on_access(1, float(t))
        assert policy.choose_victim() == 2
        policy.on_remove(2)
        assert policy.choose_victim() == 1


class TestGDSF:
    def test_prefers_evicting_large_cold_docs(self):
        policy = GDSFPolicy()
        policy.on_insert(1, 10_000, 0.0)  # big
        policy.on_insert(2, 100, 0.0)  # small
        assert policy.choose_victim() == 1

    def test_frequency_raises_priority(self):
        policy = GDSFPolicy()
        policy.on_insert(1, 100, 0.0)
        policy.on_insert(2, 100, 0.0)
        for t in range(10):
            policy.on_access(2, float(t))
        assert policy.choose_victim() == 1

    def test_inflation_gives_new_docs_a_chance(self):
        policy = GDSFPolicy()
        policy.on_insert(1, 100, 0.0)
        for t in range(50):
            policy.on_access(1, float(t))
        # Evict something to advance the clock, then admit a new doc: it must
        # not be instantly below the long-resident hot doc forever.
        policy.on_insert(2, 100, 51.0)
        policy.on_remove(2)
        policy.on_insert(3, 100, 52.0)
        assert policy.choose_victim() == 3  # still colder than doc 1 — fine
        # But after doc 1 leaves, inflation carried its priority forward.
        policy.on_remove(1)
        policy.on_insert(4, 100, 53.0)
        assert policy.choose_victim() in (3, 4)

    def test_rejects_bad_cost(self):
        with pytest.raises(ValueError):
            GDSFPolicy(cost_per_doc=0.0)


class TestMakePolicy:
    @pytest.mark.parametrize(
        "name,cls",
        [("lru", LRUPolicy), ("fifo", FIFOPolicy), ("lfu", LFUPolicy), ("gdsf", GDSFPolicy)],
    )
    def test_known_names(self, name, cls):
        assert isinstance(make_policy(name), cls)

    def test_case_insensitive(self):
        assert isinstance(make_policy("LRU"), LRUPolicy)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_policy("belady")


@st.composite
def operation_sequences(draw):
    """Random insert/access/remove/evict sequences over a small id space."""
    return draw(
        st.lists(
            st.tuples(
                st.sampled_from(["insert", "access", "remove", "evict"]),
                st.integers(min_value=0, max_value=9),
            ),
            max_size=60,
        )
    )


@pytest.mark.parametrize("policy_name", ["lru", "fifo", "lfu", "gdsf"])
@given(ops=operation_sequences())
@settings(max_examples=40, deadline=None)
def test_policy_tracks_membership_consistently(policy_name, ops):
    """Property: after any op sequence, victim ∈ tracked set; len is exact."""
    policy = make_policy(policy_name)
    resident = set()
    now = 0.0
    for action, doc in ops:
        now += 1.0
        if action == "insert" and doc not in resident:
            policy.on_insert(doc, 10 + doc, now)
            resident.add(doc)
        elif action == "access" and doc in resident:
            policy.on_access(doc, now)
        elif action == "remove" and doc in resident:
            policy.on_remove(doc)
            resident.discard(doc)
        elif action == "evict" and resident:
            victim = policy.choose_victim()
            assert victim in resident
            policy.on_remove(victim)
            resident.discard(victim)
    assert len(policy) == len(resident)
    for doc in resident:
        assert doc in policy
