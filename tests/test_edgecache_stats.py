"""Unit tests for rate estimators and cache statistics."""

import math

import pytest

from repro.edgecache.stats import (
    AccessFrequencyTracker,
    CacheStats,
    DecayingRate,
)


class TestDecayingRate:
    def test_rejects_bad_half_life(self):
        with pytest.raises(ValueError):
            DecayingRate(0.0)

    def test_zero_events_zero_rate(self):
        assert DecayingRate(10.0).rate(100.0) == 0.0

    def test_count_halves_per_half_life(self):
        rate = DecayingRate(half_life=10.0)
        rate.observe(0.0)
        assert rate.decayed_count(10.0) == pytest.approx(0.5)
        rate.observe(10.0)  # count back to 1.5
        assert rate.decayed_count(20.0) == pytest.approx(0.75)

    def test_rate_converges_to_poisson_intensity(self):
        # 5 events per unit, observed over many half-lives.
        rate = DecayingRate(half_life=20.0)
        t = 0.0
        while t < 400.0:
            for _ in range(5):
                rate.observe(t)
            t += 1.0
        assert rate.rate(400.0) == pytest.approx(5.0, rel=0.05)

    def test_weighted_observation(self):
        rate = DecayingRate(half_life=10.0)
        rate.observe(0.0, weight=3.0)
        assert rate.decayed_count(0.0) == 3.0

    def test_time_does_not_go_backwards(self):
        rate = DecayingRate(half_life=10.0)
        rate.observe(10.0)
        # Querying an earlier time returns the current (later) state rather
        # than raising: estimators are monotone in observation time.
        count_then = rate.decayed_count(5.0)
        assert count_then == pytest.approx(1.0)


class TestAccessFrequencyTracker:
    def test_unseen_doc_rate_zero(self):
        tracker = AccessFrequencyTracker()
        assert tracker.rate_of(1, 0.0) == 0.0

    def test_hot_doc_rate_above_mean(self):
        tracker = AccessFrequencyTracker(half_life=30.0)
        for t in range(100):
            tracker.observe(1, float(t))  # hot
            if t % 10 == 0:
                tracker.observe(2, float(t))  # cold
        now = 100.0
        assert tracker.rate_of(1, now) > tracker.mean_rate(now)
        assert tracker.rate_of(2, now) < tracker.mean_rate(now)

    def test_mean_rate_of_empty_tracker(self):
        assert AccessFrequencyTracker().mean_rate(0.0) == 0.0

    def test_mean_rate_is_aggregate_over_tracked_docs(self):
        tracker = AccessFrequencyTracker(half_life=10.0)
        tracker.observe(1, 0.0)
        tracker.observe(2, 0.0)
        total = tracker.rate_of(1, 0.0) + tracker.rate_of(2, 0.0)
        assert tracker.mean_rate(0.0) == pytest.approx(total / 2)

    def test_forget(self):
        tracker = AccessFrequencyTracker()
        tracker.observe(1, 0.0)
        tracker.forget(1)
        assert tracker.rate_of(1, 0.0) == 0.0
        assert tracker.tracked_documents() == 0


class TestCacheStats:
    def test_rates_with_no_requests(self):
        stats = CacheStats()
        assert stats.local_hit_rate == 0.0
        assert stats.cloud_hit_rate == 0.0
        assert stats.mean_latency_ms == 0.0

    def test_hit_rates(self):
        stats = CacheStats(requests=10, local_hits=4, cloud_hits=3)
        assert stats.local_hit_rate == pytest.approx(0.4)
        assert stats.cloud_hit_rate == pytest.approx(0.7)

    def test_latency_accumulation(self):
        stats = CacheStats(requests=2)
        stats.record_latency(10.0)
        stats.record_latency(30.0)
        assert stats.mean_latency_ms == 20.0

    def test_latency_rejects_negative(self):
        with pytest.raises(ValueError):
            CacheStats().record_latency(-1.0)

    def test_merge(self):
        a = CacheStats(requests=5, local_hits=2, stores=1)
        b = CacheStats(requests=3, local_hits=1, origin_fetches=2)
        a.merge(b)
        assert a.requests == 8
        assert a.local_hits == 3
        assert a.origin_fetches == 2
        assert a.stores == 1
