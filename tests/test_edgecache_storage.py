"""Unit tests for the byte-budgeted store."""

import pytest

from repro.edgecache.replacement import LRUPolicy
from repro.edgecache.storage import CacheStorage


class TestUnlimitedStorage:
    def test_admits_everything(self):
        storage = CacheStorage()
        for doc in range(100):
            assert storage.admit(doc, 1000, 0, float(doc)) == []
        assert len(storage) == 100
        assert storage.unlimited
        assert storage.free_bytes() is None

    def test_expected_residence_none(self):
        storage = CacheStorage()
        storage.admit(0, 100, 0, 0.0)
        assert storage.expected_residence(5.0) is None


class TestBoundedStorage:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            CacheStorage(capacity_bytes=0)

    def test_tracks_used_bytes(self):
        storage = CacheStorage(capacity_bytes=1000)
        storage.admit(1, 300, 0, 0.0)
        storage.admit(2, 200, 0, 0.0)
        assert storage.used_bytes == 500
        assert storage.free_bytes() == 500

    def test_evicts_lru_to_make_room(self):
        storage = CacheStorage(capacity_bytes=1000, policy=LRUPolicy())
        storage.admit(1, 400, 0, 0.0)
        storage.admit(2, 400, 0, 1.0)
        storage.access(1, 2.0)  # doc 2 is now LRU
        evicted = storage.admit(3, 400, 0, 3.0)
        assert evicted == [2]
        assert 1 in storage and 3 in storage and 2 not in storage
        assert storage.evictions == 1

    def test_doc_larger_than_disk_rejected(self):
        storage = CacheStorage(capacity_bytes=100)
        assert storage.admit(1, 101, 0, 0.0) is None
        assert len(storage) == 0

    def test_multiple_evictions_for_one_admit(self):
        storage = CacheStorage(capacity_bytes=1000)
        for doc in range(4):
            storage.admit(doc, 250, 0, float(doc))
        evicted = storage.admit(9, 900, 0, 10.0)
        assert evicted == [0, 1, 2, 3]  # 250 left would not fit 900 alongside
        assert storage.used_bytes == 900
        assert storage.evictions == 4

    def test_readmission_refreshes_version_in_place(self):
        storage = CacheStorage(capacity_bytes=1000)
        storage.admit(1, 400, 0, 0.0)
        evicted = storage.admit(1, 400, 3, 1.0)
        assert evicted == []
        assert storage.get(1).version == 3
        assert len(storage) == 1


class TestAccess:
    def test_access_touches_document(self):
        storage = CacheStorage()
        storage.admit(1, 100, 0, 0.0)
        doc = storage.access(1, 5.0)
        assert doc.last_access == 5.0
        assert doc.access_count == 1

    def test_access_missing_raises(self):
        with pytest.raises(KeyError):
            CacheStorage().access(7, 0.0)


class TestVersionRefresh:
    def test_refresh_updates_version(self):
        storage = CacheStorage()
        storage.admit(1, 100, 0, 0.0)
        storage.refresh_version(1, 4)
        assert storage.get(1).version == 4

    def test_refresh_with_size_change_adjusts_usage(self):
        storage = CacheStorage(capacity_bytes=1000)
        storage.admit(1, 100, 0, 0.0)
        storage.refresh_version(1, 1, size_bytes=300)
        assert storage.used_bytes == 300
        assert storage.get(1).size_bytes == 300

    def test_grown_doc_forces_eviction_of_others(self):
        storage = CacheStorage(capacity_bytes=1000)
        storage.admit(1, 500, 0, 0.0)
        storage.admit(2, 400, 0, 1.0)
        storage.refresh_version(2, 1, size_bytes=600, now=2.0)
        assert 2 in storage
        assert 1 not in storage  # evicted to fit the grown copy
        assert storage.used_bytes <= 1000


class TestRemove:
    def test_remove_returns_space(self):
        storage = CacheStorage(capacity_bytes=500)
        storage.admit(1, 300, 0, 0.0)
        storage.remove(1, 1.0)
        assert storage.used_bytes == 0
        assert storage.evictions == 0  # explicit removal is not an eviction

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            CacheStorage().remove(1, 0.0)


class TestResidenceEstimation:
    def test_no_evictions_yet_returns_none(self):
        storage = CacheStorage(capacity_bytes=1000)
        storage.admit(1, 100, 0, 0.0)
        assert storage.expected_residence(5.0) is None

    def test_estimate_is_mean_of_recent_evictions(self):
        storage = CacheStorage(capacity_bytes=200)
        storage.admit(1, 100, 0, 0.0)
        storage.admit(2, 100, 0, 0.0)
        storage.admit(3, 100, 0, 10.0)  # evicts doc 1 after 10 units
        storage.admit(4, 100, 0, 30.0)  # evicts doc 2 after 30 units
        assert storage.expected_residence(30.0) == pytest.approx(20.0)

    def test_min_resident_residence(self):
        storage = CacheStorage()
        storage.admit(1, 100, 0, 0.0)
        storage.admit(2, 100, 0, 6.0)
        assert storage.min_resident_residence(10.0, [1, 2]) == pytest.approx(4.0)
        assert storage.min_resident_residence(10.0, [99]) is None
