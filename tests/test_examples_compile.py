"""Sanity checks for the example scripts.

Running the examples end-to-end takes tens of seconds each (they are demos,
not tests), but they must at least parse, compile, and import-resolve so a
refactor cannot silently break them. Each example's ``main`` is also
required to exist — the convention the README documents.
"""

import ast
import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.stem for path in EXAMPLE_FILES}
    # The documented example set (README + DESIGN deliverables).
    assert "quickstart" in names
    assert "placement_comparison" in names
    assert "flash_crowd" in names
    assert "heterogeneous_cloud" in names
    assert "failure_resilience" in names
    assert "multi_cloud" in names
    assert "consistency_modes" in names
    assert "client_population" in names


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
def test_example_compiles(path):
    source = path.read_text()
    compile(source, str(path), "exec")


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
def test_example_has_main_guard(path):
    source = path.read_text()
    tree = ast.parse(source)
    functions = {
        node.name for node in ast.walk(tree) if isinstance(node, ast.FunctionDef)
    }
    assert "main" in functions
    assert 'if __name__ == "__main__":' in source


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
def test_example_imports_resolve(path):
    """Import the module without executing main (the __main__ guard)."""
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        assert callable(module.main)
    finally:
        sys.modules.pop(spec.name, None)


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
def test_example_has_usage_docstring(path):
    tree = ast.parse(path.read_text())
    docstring = ast.get_docstring(tree)
    assert docstring, f"{path.stem} lacks a module docstring"
    assert "Usage" in docstring
