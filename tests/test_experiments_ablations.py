"""Smoke + shape tests for the ablation studies (tiny scale)."""

import pytest

from repro.experiments.ablations import (
    AblationResult,
    ablation_consistent_hashing,
    ablation_cycle_length,
    ablation_load_information,
    ablation_threshold,
)
from repro.experiments.figures import TINY_SCALE


class TestAblationResult:
    def test_column_access(self):
        result = AblationResult("x", ["a", "b"], rows=[(1, 2), (3, 4)])
        assert result.column("a") == [1, 3]
        assert result.column("b") == [2, 4]

    def test_unknown_column_raises(self):
        result = AblationResult("x", ["a"], rows=[(1,)])
        with pytest.raises(ValueError):
            result.column("zzz")

    def test_render_contains_rows(self):
        result = AblationResult("my study", ["a"], rows=[(1.5,)])
        rendered = result.render()
        assert "my study" in rendered
        assert "1.500" in rendered


class TestLoadInformation:
    def test_two_regimes(self):
        result = ablation_load_information(TINY_SCALE)
        labels = result.column("load info")
        assert labels == ["CIrHLd (exact)", "CAvgLoad (approx)"]
        for cov in result.column("CoV"):
            assert 0.0 <= cov < 2.0


class TestConsistentHashing:
    def test_three_schemes_and_hop_costs(self):
        result = ablation_consistent_hashing(TINY_SCALE)
        rows = {row[0]: row for row in result.rows}
        assert set(rows) == {"static", "consistent", "dynamic"}
        # Consistent hashing pays log2(10) ≈ 4 hops + response per lookup.
        assert rows["consistent"][3] > rows["static"][3]


class TestThreshold:
    def test_monotone_storage(self):
        result = ablation_threshold(TINY_SCALE, thresholds=(0.1, 0.5, 0.9))
        stored = result.column("docs stored/cache (%)")
        assert stored[0] >= stored[1] >= stored[2]
        assert all(0.0 <= s <= 100.0 for s in stored)


class TestCycleLength:
    def test_migration_decreases_with_period(self):
        result = ablation_cycle_length(TINY_SCALE, cycle_lengths=(2.0, 10.0))
        migrated = result.column("directory entries migrated")
        assert migrated[0] >= migrated[1]
