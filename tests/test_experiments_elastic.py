"""The diurnal autoscaling sweep: arms, acceptance, and determinism.

The tiny-scale sweep runs in a few seconds and is the anchor here: its
acceptance verdicts (elastic matches the over-provisioned arm's flash
tail at fewer node-minutes, beats the under-provisioned arm's rejection
rate, scales both ways, audits clean) are asserted directly, and the
fingerprint must be identical at any job count (CI's elastic-smoke job
re-checks this cross-process).
"""

import pytest

from repro.core.elastic import ElasticConfig
from repro.experiments.elastic import (
    ARMS,
    MIN_CACHES,
    NUM_CACHES,
    _arm_elastic_config,
    _service_model,
    elastic_sweep,
    flash_window,
)
from repro.experiments.figures import SMALL_SCALE, TINY_SCALE
from repro.experiments.reporting import fingerprint


@pytest.fixture(scope="module")
def tiny_sweep():
    return elastic_sweep(TINY_SCALE, jobs=1)


class TestArmConfigs:
    def test_bounds_pin_the_static_arms(self):
        over = _arm_elastic_config("over", TINY_SCALE)
        assert over.min_caches == over.max_caches == NUM_CACHES
        assert over.initial_caches is None
        under = _arm_elastic_config("under", TINY_SCALE)
        assert under.min_caches == under.max_caches == MIN_CACHES
        elastic = _arm_elastic_config("elastic", TINY_SCALE)
        assert (elastic.min_caches, elastic.max_caches) == (
            MIN_CACHES,
            NUM_CACHES,
        )
        assert elastic.initial_caches == MIN_CACHES

    def test_unknown_arm_rejected(self):
        with pytest.raises(ValueError):
            _arm_elastic_config("sideways", TINY_SCALE)

    def test_every_arm_config_validates(self):
        for arm in ARMS:
            assert isinstance(_arm_elastic_config(arm, TINY_SCALE), ElasticConfig)

    def test_service_model_normalizes_utilization_across_scales(self):
        tiny = _service_model(TINY_SCALE)
        small = _service_model(SMALL_SCALE)
        # Utilization = rate x service time is scale-invariant.
        assert small.service_ms * SMALL_SCALE.request_rate_per_cache == (
            pytest.approx(tiny.service_ms * TINY_SCALE.request_rate_per_cache)
        )

    def test_flash_window_fractions(self):
        start, end = flash_window(100.0)
        assert start == pytest.approx(55.0)
        assert end == pytest.approx(65.0)


class TestTinySweep:
    def test_all_arms_complete(self, tiny_sweep):
        assert not tiny_sweep.failures
        assert set(tiny_sweep.arms) == set(ARMS)
        assert len(tiny_sweep.rows) == len(ARMS)

    def test_acceptance_criteria_hold(self, tiny_sweep):
        verdicts = tiny_sweep.acceptance()
        assert verdicts, "an arm is missing"
        failing = [name for name, ok in verdicts.items() if not ok]
        assert not failing, f"acceptance failed: {failing}"

    def test_elastic_arm_actually_scaled(self, tiny_sweep):
        elastic = tiny_sweep.arms["elastic"]
        assert elastic.scale_out_events > 0
        assert elastic.scale_in_events > 0
        # The vacuity check CI's smoke job also runs: the size series must
        # actually move, or the comparison is three static arms.
        sizes = {v for _, v in elastic.series["cloud_size"]}
        assert len(sizes) > 1
        assert elastic.drain_bytes > 0
        assert elastic.docs_handed_off > 0

    def test_static_arms_never_scale(self, tiny_sweep):
        for arm in ("over", "under"):
            result = tiny_sweep.arms[arm]
            assert result.scale_out_events == 0
            assert result.scale_in_events == 0
            sizes = {v for _, v in result.series["cloud_size"]}
            assert len(sizes) == 1

    def test_scale_in_audits_ran_and_were_clean(self, tiny_sweep):
        elastic = tiny_sweep.arms["elastic"]
        assert elastic.scale_in_audits >= elastic.scale_in_events > 0
        assert elastic.scale_in_audit_violations == 0
        for result in tiny_sweep.arms.values():
            assert result.final_audit_violations == 0

    def test_render_reports_verdicts(self, tiny_sweep):
        rendered = tiny_sweep.render()
        assert "acceptance:" in rendered
        assert "FAIL" not in rendered
        for arm in ARMS:
            assert arm in rendered

    def test_fingerprint_is_job_count_invariant(self, tiny_sweep):
        parallel = elastic_sweep(TINY_SCALE, jobs=2)
        assert fingerprint(parallel) == fingerprint(tiny_sweep)

    def test_seed_override_changes_the_workload(self, tiny_sweep):
        reseeded = elastic_sweep(TINY_SCALE, jobs=1, seed=99)
        assert fingerprint(reseeded) != fingerprint(tiny_sweep)
        assert set(reseeded.arms) == set(ARMS)
