"""Smoke + shape tests for the extension experiments (tiny scale)."""

import pytest

from repro.experiments.extensions import (
    adaptive_weights_comparison,
    consistency_mode_comparison,
    multi_cloud_update_savings,
)
from repro.experiments.figures import TINY_SCALE


class TestConsistencyComparison:
    @pytest.fixture(scope="class")
    def result(self):
        return consistency_mode_comparison(TINY_SCALE)

    def test_three_modes_present(self, result):
        modes = [row[0] for row in result.rows]
        assert modes[0].startswith("push")
        assert modes[1].startswith("TTL")
        assert modes[2].startswith("leases")

    def test_push_is_never_stale(self, result):
        assert result.row("push (cache cloud)")[2] == 0.0

    def test_ttl_serves_stale_documents(self, result):
        assert result.row("TTL (15 min)")[2] > 1.0  # visibly stale

    def test_leases_much_fresher_than_ttl(self, result):
        assert result.row("leases (30 min)")[2] < result.row("TTL (15 min)")[2]

    def test_push_sends_one_origin_message_per_update(self, result):
        assert result.row("push (cache cloud)")[3] == pytest.approx(1.0, abs=0.05)

    def test_render(self, result):
        assert "consistency modes" in result.render()


class TestMultiCloudSavings:
    @pytest.fixture(scope="class")
    def result(self):
        return multi_cloud_update_savings(
            TINY_SCALE, cloud_counts=(1, 2), caches_per_cloud=4
        )

    def test_rows(self, result):
        assert result.cloud_counts == [1, 2]
        assert len(result.cooperative_messages) == 2

    def test_cooperation_saves_server_messages(self, result):
        for n in result.cloud_counts:
            assert result.savings_at(n) > 0.3

    def test_savings_do_not_collapse_with_more_clouds(self, result):
        # One message per cloud still beats one per holder at every size.
        assert result.savings_at(2) > 0.2

    def test_render(self, result):
        assert "server update messages" in result.render()


class TestAdaptiveWeights:
    @pytest.fixture(scope="class")
    def result(self):
        return adaptive_weights_comparison(TINY_SCALE)

    def test_adaptation_actually_stepped(self, result):
        assert result.steps >= 2

    def test_weights_remain_normalized(self, result):
        assert sum(result.final_weights.values()) == pytest.approx(1.0)

    def test_dscc_stays_disabled(self, result):
        assert result.final_weights["dscc"] == 0.0

    def test_adaptive_not_much_worse_than_fixed(self, result):
        # The controller must never blow up traffic; on the shifting
        # workload it typically improves it.
        assert result.adaptive_mb <= result.fixed_mb * 1.10

    def test_render(self, result):
        rendered = result.render()
        assert "fixed weights" in rendered
        assert "adaptive weights" in rendered


class TestFailureResilienceValue:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments.extensions import failure_resilience_value

        return failure_resilience_value(TINY_SCALE)

    def test_two_variants(self, result):
        assert [row[0] for row in result.rows] == ["with replica", "without replica"]

    def test_replica_reduces_origin_fetches(self, result):
        assert result.row("with replica")[2] <= result.row("without replica")[2]

    def test_render(self, result):
        assert "lazy directory replication" in result.render()


class TestClientLatency:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments.extensions import client_latency_comparison

        return client_latency_comparison(TINY_SCALE)

    def test_five_schemes(self, result):
        assert len(result.rows) == 5

    def test_no_cooperation_is_worst(self, result):
        worst = result.latency("no cooperation")
        for scheme in ("ad hoc", "utility", "expiration age", "beacon"):
            assert result.latency(scheme) < worst

    def test_beacon_pays_for_single_copy(self, result):
        assert result.latency("beacon") > result.latency("utility")

    def test_unknown_scheme_raises(self, result):
        with pytest.raises(KeyError):
            result.latency("bogus")

    def test_render(self, result):
        assert "client latency" in result.render()


class TestCapabilityProportionality:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments.extensions import capability_proportionality

        return capability_proportionality(TINY_SCALE)

    def test_loads_for_all_caches(self, result):
        assert set(result.static_loads) == set(range(10))
        assert set(result.dynamic_loads) == set(range(10))

    def test_dynamic_respects_capability_better(self, result):
        assert result.dynamic_imbalance < result.static_imbalance * 1.05

    def test_rejects_wrong_capability_count(self):
        from repro.experiments.extensions import capability_proportionality

        with pytest.raises(ValueError):
            capability_proportionality(TINY_SCALE, capabilities=[1.0, 2.0])

    def test_render(self, result):
        assert "capability" in result.render()
