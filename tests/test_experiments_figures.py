"""Smoke + shape tests for the figure reproductions (tiny scale).

Tiny runs are statistically noisy, so assertions here target *robust* shape
properties (orderings that hold by construction) rather than the paper's
ratios; EXPERIMENTS.md validates the ratios at benchmark scale.
"""

import pytest

from repro.experiments import figures
from repro.experiments.figures import (
    FigureScale,
    TINY_SCALE,
    figure3,
    figure5,
    figure6,
    figure7_and_8,
    figure9,
)


class TestFigureScale:
    def test_validation(self):
        with pytest.raises(ValueError):
            FigureScale(
                num_documents=0,
                request_rate_per_cache=1.0,
                update_rate=1.0,
                duration_minutes=10.0,
            )

    def test_presets_exist(self):
        assert figures.SMALL_SCALE.num_documents > TINY_SCALE.num_documents
        assert figures.PAPER_SCALE.num_documents == 25_000


class TestFigure3:
    def test_structure(self):
        result = figure3(TINY_SCALE)
        assert len(result.static.beacon_loads) == 10
        assert len(result.dynamic.beacon_loads) == 10
        # Identical workload: total load conserved across schemes.
        assert sum(result.static.beacon_loads.values()) == pytest.approx(
            sum(result.dynamic.beacon_loads.values()), rel=0.05
        )
        rendered = result.render()
        assert "Figure 3" in rendered
        assert "peak/mean" in rendered


class TestFigure5:
    def test_rows_and_labels(self):
        result = figure5(TINY_SCALE, cloud_sizes=(10,), ring_sizes=(2, 5))
        assert result.labels() == ["static", "dynamic/2-per-ring", "dynamic/5-per-ring"]
        assert set(result.cov) == {
            (10, "static"),
            (10, "dynamic/2-per-ring"),
            (10, "dynamic/5-per-ring"),
        }
        for value in result.cov.values():
            assert value >= 0.0
        assert "Figure 5" in result.render()

    def test_bigger_rings_balance_at_least_as_well(self):
        result = figure5(TINY_SCALE, cloud_sizes=(10,), ring_sizes=(2, 10))
        # A single 10-member ring balances across all beacon points; it must
        # beat (or match) the 2-member configuration on the same workload.
        assert (
            result.cov[(10, "dynamic/10-per-ring")]
            <= result.cov[(10, "dynamic/2-per-ring")] + 0.05
        )


class TestFigure6:
    def test_series_lengths(self):
        result = figure6(TINY_SCALE, alphas=(0.0, 0.9))
        assert result.alphas == [0.0, 0.9]
        assert len(result.cov_static) == 2
        assert len(result.cov_dynamic) == 2
        assert "Figure 6" in result.render()

    def test_skew_increases_static_imbalance(self):
        result = figure6(TINY_SCALE, alphas=(0.0, 0.9))
        assert result.cov_static[1] > result.cov_static[0]

    def test_divergence_at(self):
        result = figure6(TINY_SCALE, alphas=(0.9,))
        value = result.divergence_at(0.9)
        assert isinstance(value, float)


class TestFigures7And8:
    @pytest.fixture(scope="class")
    def results(self):
        return figure7_and_8(TINY_SCALE, update_rates=(10.0, 500.0))

    def test_series_present(self, results):
        stored, traffic = results
        for result in (stored, traffic):
            assert set(result.series) == {"ad hoc", "utility", "beacon"}
            for series in result.series.values():
                assert len(series) == 2

    def test_figure7_orderings(self, results):
        stored, _ = results
        for index in range(2):
            assert stored.series["ad hoc"][index] > stored.series["utility"][index]
            assert stored.series["utility"][index] > stored.series["beacon"][index]

    def test_beacon_stores_one_copy_per_doc(self, results):
        stored, _ = results
        # ~10% per cache in a 10-cache cloud (one copy per requested doc).
        for value in stored.series["beacon"]:
            assert 5.0 < value < 20.0

    def test_utility_storage_decreases_with_update_rate(self, results):
        stored, _ = results
        assert stored.series["utility"][1] < stored.series["utility"][0]

    def test_figure8_adhoc_traffic_grows_with_update_rate(self, results):
        _, traffic = results
        assert traffic.series["ad hoc"][1] > traffic.series["ad hoc"][0]

    def test_utility_beats_adhoc_at_high_update_rate(self, results):
        _, traffic = results
        assert traffic.series["utility"][1] < traffic.series["ad hoc"][1]

    def test_value_accessor_and_render(self, results):
        stored, traffic = results
        rate = stored.update_rates[0]
        assert stored.value("ad hoc", rate) == stored.series["ad hoc"][0]
        assert "update rate" in traffic.render()


class TestFigure9:
    def test_limited_disk_run(self):
        result = figure9(TINY_SCALE, update_rates=(100.0,))
        assert set(result.series) == {"ad hoc", "utility", "beacon"}
        assert result.figure == "Figure 9"
        assert all(v > 0 for series in result.series.values() for v in series)

    def test_utility_not_worse_than_adhoc(self):
        result = figure9(TINY_SCALE, update_rates=(500.0,))
        assert result.series["utility"][0] <= result.series["ad hoc"][0] * 1.1
