"""Unit tests for the parallel sweep executor."""

from __future__ import annotations

import pickle

import pytest

from repro.core.config import AssignmentScheme, CloudConfig, PlacementScheme
from repro.experiments import parallel
from repro.experiments.parallel import (
    JOBS_ENV_VAR,
    ExperimentSpec,
    FailedRun,
    WorkloadSpec,
    derive_seed,
    resolve_jobs,
    run_spec,
    run_sweep,
)
from repro.workload.generator import WorkloadConfig
from repro.workload.sydney import SydneyConfig


def zipf_spec(key="spec", seed=7, alpha=0.9) -> ExperimentSpec:
    """A small, fast spec used throughout these tests."""
    workload = WorkloadSpec(
        generator_config=WorkloadConfig(
            num_documents=60,
            num_caches=4,
            request_rate_per_cache=30.0,
            update_rate=10.0,
            alpha_requests=alpha,
            duration_minutes=10.0,
            seed=seed,
        ),
        corpus_documents=60,
        corpus_seed=seed,
    )
    config = CloudConfig(
        num_caches=4,
        num_rings=2,
        intra_gen=100,
        cycle_length=5.0,
        assignment=AssignmentScheme.DYNAMIC,
        placement=PlacementScheme.AD_HOC,
        seed=seed,
    )
    return ExperimentSpec(
        key=key, config=config, workload=workload, duration=10.0, warmup=0.0
    )


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_sensitive_to_every_part(self):
        base = derive_seed(1, "a", 2)
        assert derive_seed(2, "a", 2) != base
        assert derive_seed(1, "b", 2) != base
        assert derive_seed(1, "a", 3) != base


class TestWorkloadSpec:
    def test_materialize_is_deterministic(self):
        spec = zipf_spec().workload
        corpus_a, trace_a = spec.materialize()
        corpus_b, trace_b = spec.materialize()
        assert [d.size_bytes for d in corpus_a] == [d.size_bytes for d in corpus_b]
        assert trace_a.requests == trace_b.requests
        assert trace_a.updates == trace_b.updates

    def test_sydney_config_selects_sydney_generator(self):
        spec = WorkloadSpec(
            generator_config=SydneyConfig(
                num_documents=40,
                num_caches=4,
                peak_request_rate_per_cache=20.0,
                base_update_rate=5.0,
                duration_minutes=10.0,
                diurnal_period_minutes=10.0,
                num_epochs=2,
                drift_pool=10,
                seed=3,
            ),
            corpus_documents=40,
            corpus_seed=3,
        )
        trace = spec.build_trace()
        assert trace.requests  # the Sydney generator produced a workload

    def test_specs_are_picklable_and_small(self):
        spec = zipf_spec()
        blob = pickle.dumps(spec)
        assert pickle.loads(blob) == spec
        # The whole point: the recipe crosses the process boundary, not the
        # materialized trace (thousands of records).
        assert len(blob) < 10_000


class TestResolveJobs:
    def test_explicit_value_wins(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "8")
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "5")
        assert resolve_jobs() == 5

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert resolve_jobs() == 1

    def test_zero_means_all_cpus(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert resolve_jobs(0) >= 1

    def test_invalid_env_value_raises(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "many")
        with pytest.raises(ValueError, match=JOBS_ENV_VAR):
            resolve_jobs()


class TestRunSweep:
    def test_empty_sweep(self):
        assert run_sweep([]) == []

    def test_results_in_spec_order(self):
        specs = [zipf_spec(key=k, alpha=a) for k, a in (("a", 0.2), ("b", 0.9))]
        results = run_sweep(specs, jobs=1)
        assert [r.config.seed for r in results] == [s.config.seed for s in specs]
        # Different alphas genuinely produce different workloads/results.
        assert results[0].requests != 0
        assert results[0].load_stats != results[1].load_stats

    def test_results_are_detached(self):
        (result,) = run_sweep([zipf_spec()], jobs=1)
        assert result.cloud is None
        assert result.unique_request_docs > 0

    def test_parallel_matches_serial_exactly(self):
        """The headline guarantee: jobs=4 is value-identical to jobs=1."""
        specs = [
            zipf_spec(key=k, seed=s, alpha=a)
            for k, s, a in (("a", 1, 0.2), ("b", 2, 0.6), ("c", 3, 0.9), ("d", 4, 0.9))
        ]
        serial = run_sweep(specs, jobs=1)
        parallel_results = run_sweep(specs, jobs=4)
        assert serial == parallel_results

    def test_pool_failure_falls_back_to_serial(self, monkeypatch):
        def broken(*args, **kwargs):
            raise OSError("no semaphores here")

        monkeypatch.setattr(parallel, "_run_parallel", broken)
        specs = [zipf_spec(key="a"), zipf_spec(key="b")]
        results = run_sweep(specs, jobs=2)
        assert results == run_sweep(specs, jobs=1)

    def test_jobs_capped_by_spec_count(self, monkeypatch):
        seen = {}

        def fake_parallel(specs, workers, runner, on_result=None):
            seen["workers"] = workers
            return [runner(spec) for spec in specs]

        monkeypatch.setattr(parallel, "_run_parallel", fake_parallel)
        run_sweep([zipf_spec(key="a"), zipf_spec(key="b")], jobs=16)
        assert seen["workers"] == 2

    def test_custom_runner(self):
        results = run_sweep([zipf_spec(key="x")], jobs=1, runner=lambda s: s.key)
        assert results == ["x"]

    def test_run_spec_equals_inline_execution(self):
        """run_spec reproduces exactly what a hand-rolled run would."""
        from repro.experiments.runner import run_experiment

        spec = zipf_spec()
        corpus, trace = spec.workload.materialize()
        expected = run_experiment(
            spec.config,
            corpus,
            trace.requests,
            trace.updates,
            duration=spec.duration,
            warmup=spec.warmup,
        )
        expected.unique_request_docs = len(trace.request_counts_by_doc())
        assert run_spec(spec) == expected.detached()


def _always_boom(spec):
    """Module-level (picklable) runner that fails every time."""
    raise RuntimeError(f"boom:{spec.key}")


def _boom_for_b(spec):
    """Module-level runner that fails only for the spec keyed 'b'."""
    if spec.key == "b":
        raise ValueError("b is cursed")
    return spec.key


class TestSweepHardening:
    def test_persistent_failure_yields_failed_run(self):
        results = run_sweep([zipf_spec(key="x")], jobs=1, runner=_always_boom)
        (failed,) = results
        assert isinstance(failed, FailedRun)
        assert failed.key == "x"
        assert failed.error_type == "RuntimeError"
        assert "boom:x" in failed.error

    def test_failure_does_not_poison_other_slots(self):
        specs = [zipf_spec(key=k) for k in ("a", "b", "c")]
        results = run_sweep(specs, jobs=1, runner=_boom_for_b)
        assert results[0] == "a"
        assert isinstance(results[1], FailedRun)
        assert results[1].key == "b"
        assert results[2] == "c"

    def test_transient_failure_recovers_on_serial_retry(self):
        calls = {"n": 0}

        def flaky(spec):
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError("transient")
            return spec.key

        results = run_sweep([zipf_spec(key="x")], jobs=1, runner=flaky)
        assert results == ["x"]
        assert calls["n"] == 2

    def test_parallel_failures_land_in_spec_order(self):
        specs = [zipf_spec(key=k) for k in ("a", "b", "c")]
        results = run_sweep(specs, jobs=2, runner=_boom_for_b)
        assert results[0] == "a"
        assert isinstance(results[1], FailedRun)
        assert results[1].error_type == "ValueError"
        assert results[2] == "c"


_CHECKPOINT_CALLS: list = []


def _recording_runner(spec):
    """Module-level (picklable, stable qualname) runner that logs calls."""
    _CHECKPOINT_CALLS.append(spec.key)
    return spec.key


_FAIL_BUDGET = {"remaining": 0}


def _fail_while_budget(spec):
    """Fails the 'b' spec while the budget lasts, then succeeds."""
    if spec.key == "b" and _FAIL_BUDGET["remaining"] > 0:
        _FAIL_BUDGET["remaining"] -= 1
        raise RuntimeError("b is cursed for now")
    return spec.key


class TestSweepCheckpoint:
    """Checkpoint/resume: long sweeps survive interruption arm-by-arm."""

    @pytest.fixture(autouse=True)
    def _clean_call_log(self):
        _CHECKPOINT_CALLS.clear()
        _FAIL_BUDGET["remaining"] = 0
        yield
        _CHECKPOINT_CALLS.clear()
        _FAIL_BUDGET["remaining"] = 0

    def _specs(self):
        return [zipf_spec(key=k) for k in ("a", "b", "c")]

    def test_resume_skips_completed_runs(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        specs = self._specs()
        first = run_sweep(specs, jobs=1, runner=_recording_runner,
                          checkpoint=path)
        assert first == ["a", "b", "c"]
        assert _CHECKPOINT_CALLS == ["a", "b", "c"]

        _CHECKPOINT_CALLS.clear()
        again = run_sweep(specs, jobs=1, runner=_recording_runner,
                          checkpoint=path)
        assert again == first
        assert _CHECKPOINT_CALLS == []  # everything restored, nothing re-run

    def test_failed_runs_are_retried_on_resume(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        specs = self._specs()
        # Two failures: the initial attempt and the automatic serial retry —
        # so the first sweep really records a FailedRun for 'b'.
        _FAIL_BUDGET["remaining"] = 2
        first = run_sweep(specs, jobs=1, runner=_fail_while_budget,
                          checkpoint=path)
        assert first[0] == "a" and first[2] == "c"
        assert isinstance(first[1], FailedRun)

        resumed = run_sweep(specs, jobs=1, runner=_fail_while_budget,
                            checkpoint=path)
        assert resumed == ["a", "b", "c"]  # only 'b' re-ran, and it healed

    def test_signature_mismatch_raises(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        run_sweep(self._specs(), jobs=1, runner=_recording_runner,
                  checkpoint=path)
        other = [zipf_spec(key="a", seed=99)]
        with pytest.raises(ValueError, match="different sweep"):
            run_sweep(other, jobs=1, runner=_recording_runner, checkpoint=path)

    def test_non_checkpoint_file_rejected(self, tmp_path):
        path = tmp_path / "not-a-checkpoint.txt"
        path.write_text("just some notes\n")
        with pytest.raises(ValueError, match="not a sweep checkpoint"):
            run_sweep(self._specs(), jobs=1, runner=_recording_runner,
                      checkpoint=path)

    def test_truncated_tail_record_is_reexecuted(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        specs = self._specs()
        run_sweep(specs, jobs=1, runner=_recording_runner, checkpoint=path)
        # Chop mid-record, as a crash during the final append would.
        raw = path.read_bytes()
        path.write_bytes(raw[:-4])

        _CHECKPOINT_CALLS.clear()
        resumed = run_sweep(specs, jobs=1, runner=_recording_runner,
                            checkpoint=path)
        assert resumed == ["a", "b", "c"]
        assert _CHECKPOINT_CALLS == ["c"]  # only the torn record re-ran

    def test_resumed_results_value_identical_to_uninterrupted(self, tmp_path):
        """Real ExperimentResults round-trip the checkpoint byte-exactly."""
        path = tmp_path / "sweep.ckpt"
        specs = [zipf_spec(key=k, seed=s) for k, s in (("a", 1), ("b", 2))]
        uninterrupted = run_sweep(specs, jobs=1)
        checkpointed = run_sweep(specs, jobs=1, checkpoint=path)
        restored = run_sweep(specs, jobs=1, checkpoint=path)
        assert checkpointed == uninterrupted
        assert restored == uninterrupted

    def test_parallel_checkpoint_matches_serial(self, tmp_path):
        serial = run_sweep(self._specs(), jobs=1, runner=_recording_runner,
                           checkpoint=tmp_path / "serial.ckpt")
        parallel_run = run_sweep(self._specs(), jobs=2,
                                 runner=_recording_runner,
                                 checkpoint=tmp_path / "parallel.ckpt")
        assert serial == parallel_run
