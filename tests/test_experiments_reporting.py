"""Unit tests for result archiving and run comparison."""

import dataclasses
import enum

import pytest

from repro.experiments.reporting import (
    SCHEMA_VERSION,
    compare_runs,
    load_result,
    numeric_view,
    save_result,
    to_jsonable,
)


class Color(enum.Enum):
    RED = "red"


@dataclasses.dataclass
class Inner:
    value: float
    tag: str


@dataclasses.dataclass
class Outer:
    name: str
    inner: Inner
    series: list
    table: dict


def sample_result():
    return Outer(
        name="exp",
        inner=Inner(value=1.5, tag="t"),
        series=[1.0, 2.0, 3.0],
        table={(10, "static"): 0.5, (10, "dynamic"): 0.25},
    )


class TestToJsonable:
    def test_dataclasses_recursive(self):
        data = to_jsonable(sample_result())
        assert data["inner"] == {"value": 1.5, "tag": "t"}
        assert data["series"] == [1.0, 2.0, 3.0]

    def test_tuple_keys_stringified(self):
        data = to_jsonable(sample_result())
        assert data["table"]["10|static"] == 0.5

    def test_enum_by_value(self):
        assert to_jsonable(Color.RED) == "red"

    def test_sets_sorted(self):
        assert to_jsonable({3, 1, 2}) == [1, 2, 3]

    def test_unknown_objects_fall_back_to_repr(self):
        class Strange:
            def __repr__(self):
                return "<strange>"

        assert to_jsonable(Strange()) == "<strange>"


class TestSaveLoad:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "out" / "exp.json"
        written = save_result(sample_result(), path, name="exp")
        loaded = load_result(path)
        assert loaded == written
        assert loaded["schema_version"] == SCHEMA_VERSION
        assert loaded["experiment"] == "exp"
        assert loaded["payload"]["inner"]["value"] == 1.5

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "a" / "b" / "c.json"
        save_result({"x": 1}, path, name="exp")
        assert path.exists()

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema_version": 99, "experiment": "e", "payload": {}}')
        with pytest.raises(ValueError):
            load_result(path)

    def test_load_rejects_missing_fields(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema_version": 1}')
        with pytest.raises(ValueError):
            load_result(path)


class TestCompare:
    def archive(self, tmp_path, name, payload, filename):
        path = tmp_path / filename
        save_result(payload, path, name=name)
        return load_result(path)

    def test_numeric_view_flattens(self, tmp_path):
        doc = self.archive(tmp_path, "e", {"a": 1.0, "b": {"c": [2.0, 3.0]}}, "x.json")
        numbers = numeric_view(doc)
        assert numbers["a"] == 1.0
        assert numbers["b.c[1]"] == 3.0

    def test_identical_runs_have_no_drift(self, tmp_path):
        a = self.archive(tmp_path, "e", {"v": 10.0}, "a.json")
        b = self.archive(tmp_path, "e", {"v": 10.0}, "b.json")
        assert compare_runs(a, b) == []

    def test_drift_detected(self, tmp_path):
        a = self.archive(tmp_path, "e", {"v": 10.0, "w": 1.0}, "a.json")
        b = self.archive(tmp_path, "e", {"v": 12.0, "w": 1.01}, "b.json")
        drifted = compare_runs(a, b, tolerance=0.05)
        paths = [p for p, *_ in drifted]
        assert "v" in paths and "w" not in paths

    def test_near_zero_baseline_uses_absolute_delta(self, tmp_path):
        a = self.archive(tmp_path, "e", {"v": 0.0}, "a.json")
        b = self.archive(tmp_path, "e", {"v": 0.01}, "b.json")
        assert compare_runs(a, b, tolerance=0.05) == []
        c = self.archive(tmp_path, "e", {"v": 0.2}, "c.json")
        assert len(compare_runs(a, c, tolerance=0.05)) == 1

    def test_different_experiments_rejected(self, tmp_path):
        a = self.archive(tmp_path, "e1", {"v": 1.0}, "a.json")
        b = self.archive(tmp_path, "e2", {"v": 1.0}, "b.json")
        with pytest.raises(ValueError):
            compare_runs(a, b)

    def test_booleans_are_not_numbers(self, tmp_path):
        a = self.archive(tmp_path, "e", {"flag": True}, "a.json")
        assert numeric_view(a) == {}

    def test_archiving_a_real_figure_result(self, tmp_path):
        from repro.experiments.figures import TINY_SCALE, figure6

        result = figure6(TINY_SCALE, alphas=(0.0, 0.9))
        doc = save_result(result, tmp_path / "fig6.json", name="figure6")
        numbers = numeric_view(doc)
        assert "cov_static[0]" in numbers
        assert "cov_dynamic[1]" in numbers
