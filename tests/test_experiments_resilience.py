"""Integration tests for the resilience sweep (loss × churn grid)."""

import pytest

from repro.experiments.figures import TINY_SCALE
from repro.experiments.reporting import fingerprint
from repro.experiments.resilience import anti_entropy_sweep, resilience_sweep


@pytest.fixture(scope="module")
def sweep():
    """One tiny sweep shared by the module (the runs dominate test time)."""
    return resilience_sweep(
        scale=TINY_SCALE, loss_rates=(0.0, 0.5, 0.9), churn_rates=(0.0,)
    )


class TestResilienceSweep:
    def test_no_failed_points(self, sweep):
        assert sweep.failures == []
        assert len(sweep.rows) == 3

    def test_hit_rate_degrades_monotonically_with_loss(self, sweep):
        rates = [sweep.hit_rate(loss, 0.0) for loss in (0.0, 0.5, 0.9)]
        assert rates[0] > rates[1] > rates[2]

    def test_origin_load_grows_with_loss(self, sweep):
        fetches = [sweep.row(loss, 0.0)[3] for loss in (0.0, 0.5, 0.9)]
        assert fetches[0] < fetches[1] < fetches[2]

    def test_perfect_network_row_is_clean(self, sweep):
        row = sweep.row(0.0, 0.0)
        columns = dict(zip(sweep.columns, row))
        assert columns["retries"] == 0.0
        assert columns["timeouts"] == 0.0
        assert columns["failovers"] == 0.0
        assert columns["unavailable (min)"] == 0.0

    def test_lossy_rows_show_protocol_work(self, sweep):
        row = dict(zip(sweep.columns, sweep.row(0.9, 0.0)))
        assert row["retries"] > 0.0
        assert row["timeouts"] > 0.0

    def test_render_contains_grid(self, sweep):
        rendered = sweep.render()
        assert "Resilience" in rendered
        assert "cloud hit rate (%)" in rendered


class TestSweepDeterminism:
    def test_serial_and_parallel_fingerprints_match(self):
        serial = resilience_sweep(
            scale=TINY_SCALE, loss_rates=(0.0, 0.5), churn_rates=(0.0,), jobs=1
        )
        parallel = resilience_sweep(
            scale=TINY_SCALE, loss_rates=(0.0, 0.5), churn_rates=(0.0,), jobs=2
        )
        assert fingerprint(serial) == fingerprint(parallel)


class TestSeedOverride:
    def test_seed_changes_the_sweep(self):
        base = resilience_sweep(
            scale=TINY_SCALE, loss_rates=(0.5,), churn_rates=(0.0,)
        )
        reseeded = resilience_sweep(
            scale=TINY_SCALE, loss_rates=(0.5,), churn_rates=(0.0,), seed=99
        )
        assert base.failures == [] and reseeded.failures == []
        # A new root seed re-derives workload and fault streams: the sweep
        # must actually change, not just relabel.
        assert fingerprint(base) != fingerprint(reseeded)

    def test_explicit_scale_seed_is_a_noop_override(self):
        base = resilience_sweep(
            scale=TINY_SCALE, loss_rates=(0.5,), churn_rates=(0.0,)
        )
        same = resilience_sweep(
            scale=TINY_SCALE,
            loss_rates=(0.5,),
            churn_rates=(0.0,),
            seed=TINY_SCALE.seed,
        )
        assert fingerprint(base) == fingerprint(same)


class TestAntiEntropySweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return anti_entropy_sweep(
            scale=TINY_SCALE, loss_rates=(0.5,), churn_rates=(0.1,)
        )

    def test_no_failed_points(self, sweep):
        assert sweep.failures == []
        assert len(sweep.rows) == 1

    def test_repair_reduces_end_of_run_staleness(self, sweep):
        row = dict(zip(sweep.columns, sweep.row(0.5, 0.1)))
        assert row["stale (off)"] >= row["stale (on)"]
        assert row["repairs"] > 0.0
        assert row["repair traffic (MB)"] > 0.0
        if row["stale (off)"]:
            expected = (
                100.0
                * (row["stale (off)"] - row["stale (on)"])
                / row["stale (off)"]
            )
            assert row["stale reduction (%)"] == pytest.approx(expected)

    def test_render_contains_header(self, sweep):
        rendered = sweep.render()
        assert "Anti-entropy" in rendered
        assert "stale (off)" in rendered


class TestChurnColumn:
    def test_churn_produces_failovers_and_unavailability(self):
        sweep = resilience_sweep(
            scale=TINY_SCALE, loss_rates=(0.0,), churn_rates=(0.1,)
        )
        assert sweep.failures == []
        row = dict(zip(sweep.columns, sweep.row(0.0, 0.1)))
        assert row["failovers"] > 0.0
        assert row["unavailable (min)"] > 0.0
