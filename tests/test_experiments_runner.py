"""Unit tests for the experiment driver."""

import pytest

from repro.core.config import AssignmentScheme, CloudConfig, PlacementScheme
from repro.experiments.runner import TraceFeeder, run_experiment, run_trace
from repro.simulation.engine import Simulator
from repro.core.cloud import CacheCloud
from repro.workload.documents import build_corpus
from repro.workload.trace import RequestRecord, Trace, UpdateRecord


@pytest.fixture
def corpus():
    return build_corpus(30, fixed_size=1024)


def config(**overrides):
    defaults = dict(
        num_caches=4,
        num_rings=2,
        intra_gen=100,
        cycle_length=10.0,
        placement=PlacementScheme.AD_HOC,
    )
    defaults.update(overrides)
    return CloudConfig(**defaults)


def simple_trace():
    requests = [RequestRecord(float(i) * 0.5, i % 4, i % 10) for i in range(40)]
    updates = [UpdateRecord(float(i) + 0.25, i % 10) for i in range(15)]
    return Trace(requests=requests, updates=updates)


class TestTraceFeeder:
    def test_feeds_all_records_in_order(self, corpus):
        sim = Simulator()
        cloud = CacheCloud(config(), corpus)
        trace = simple_trace()
        feeder = TraceFeeder(sim, cloud, trace.merged())
        feeder.start()
        sim.run_until(100.0)
        assert feeder.records_fed == len(trace)
        assert cloud.requests_handled == 40
        assert cloud.updates_handled == 15

    def test_one_event_in_flight(self, corpus):
        sim = Simulator()
        cloud = CacheCloud(config(), corpus)
        feeder = TraceFeeder(sim, cloud, simple_trace().merged())
        feeder.start()
        assert sim.pending_events == 1  # never the whole trace


class TestRunExperiment:
    def test_validation(self, corpus):
        with pytest.raises(ValueError):
            run_experiment(config(), corpus, [], [], duration=0.0)
        with pytest.raises(ValueError):
            run_experiment(config(), corpus, [], [], duration=10.0, warmup=10.0)

    def test_result_fields_populated(self, corpus):
        trace = simple_trace()
        result = run_experiment(
            config(), corpus, trace.requests, trace.updates, duration=30.0, warmup=5.0
        )
        assert result.duration == 30.0
        assert result.measured_span == 25.0
        assert set(result.beacon_loads) == {0, 1, 2, 3}
        assert result.load_stats is not None
        assert result.requests == 40
        assert result.updates == 15
        assert result.cloud is not None
        assert 0.0 <= result.docs_stored_percent <= 100.0

    def test_warmup_resets_counters(self, corpus):
        trace = simple_trace()
        # All records land before t=20; with warmup at 21 every counter the
        # result reports must be zero.
        result = run_experiment(
            config(),
            corpus,
            trace.requests,
            trace.updates,
            duration=30.0,
            warmup=21.0,
        )
        assert all(load == 0 for load in result.beacon_loads.values())
        assert result.traffic.total_bytes == 0
        assert result.stats.requests == 0

    def test_default_warmup_is_one_cycle(self, corpus):
        trace = simple_trace()
        result = run_experiment(
            config(cycle_length=8.0),
            corpus,
            trace.requests,
            trace.updates,
            duration=30.0,
        )
        assert result.warmup == 8.0

    def test_loads_are_per_unit_time(self, corpus):
        trace = simple_trace()
        result = run_experiment(
            config(), corpus, trace.requests, trace.updates, duration=40.0, warmup=0.0
        )
        total_handled = sum(b.total_load for b in result.cloud.beacons.values())
        assert sum(result.beacon_loads.values()) == pytest.approx(
            total_handled / 40.0
        )

    def test_cycles_attached(self, corpus):
        trace = simple_trace()
        result = run_experiment(
            config(cycle_length=5.0),
            corpus,
            trace.requests,
            trace.updates,
            duration=26.0,
            warmup=0.0,
        )
        assert result.cloud.cycles_run == 5

    def test_sorted_loads_descending(self, corpus):
        trace = simple_trace()
        result = run_experiment(
            config(), corpus, trace.requests, trace.updates, duration=30.0, warmup=0.0
        )
        loads = result.sorted_loads()
        assert loads == sorted(loads, reverse=True)


class TestRunTrace:
    def test_accepts_trace_object(self, corpus):
        result = run_trace(config(), corpus, simple_trace())
        assert result.requests == 40

    def test_accepts_record_iterable_with_duration(self, corpus):
        records = list(simple_trace().merged())
        result = run_trace(config(), corpus, records, duration=30.0)
        assert result.requests == 40
        assert result.updates == 15

    def test_record_iterable_requires_duration(self, corpus):
        with pytest.raises(ValueError):
            run_trace(config(), corpus, iter([]))

    def test_default_duration_covers_trace(self, corpus):
        """The inferred duration is the trace span (plus the window epsilon)."""
        trace = simple_trace()
        result = run_trace(config(), corpus, trace)
        assert result.duration == pytest.approx(trace.duration, abs=1e-6)
        assert result.duration > trace.duration  # last record stays inside

    def test_empty_trace_defaults_to_one_unit(self, corpus):
        """Regression: ``trace.duration + 1e-9 or 1.0`` never hit the 1.0 arm,
        so an empty trace produced a ~1e-9 duration and a nonsense MB/unit
        normalization."""
        result = run_trace(config(), corpus, Trace(requests=[], updates=[]))
        assert result.duration == pytest.approx(1.0)
        assert result.requests == 0
        assert result.network_mb_per_unit == 0.0

    def test_zero_duration_trace_defaults_to_one_unit(self, corpus):
        """A trace whose only records sit at t=0 spans zero time; the run
        still needs a positive window, and the records must land inside it."""
        trace = Trace(requests=[RequestRecord(0.0, 0, 1)], updates=[])
        result = run_trace(config(), corpus, trace, warmup=0.0)
        assert result.duration == pytest.approx(1.0)
        assert result.requests == 1
        assert result.network_mb_per_unit < 1e6  # sane normalization


class TestCommonRandomNumbers:
    def test_same_trace_two_schemes_same_total_load(self, corpus):
        """Static and dynamic see identical workloads (CRN comparisons)."""
        trace = simple_trace()
        static = run_experiment(
            config(assignment=AssignmentScheme.STATIC),
            corpus,
            trace.requests,
            trace.updates,
            duration=30.0,
            warmup=0.0,
        )
        dynamic = run_experiment(
            config(assignment=AssignmentScheme.DYNAMIC),
            corpus,
            trace.requests,
            trace.updates,
            duration=30.0,
            warmup=0.0,
        )
        assert static.requests == dynamic.requests
        assert static.updates == dynamic.updates
