"""Tests for the strategy-zoo sweep (:mod:`repro.experiments.zoo`)."""

from __future__ import annotations

import pytest

from repro.experiments.reporting import fingerprint
from repro.experiments.zoo import (
    DEFAULT_SCHEMES,
    ZOO_TINY,
    ZooScale,
    zoo_sweep,
)
from repro.strategies import KNOWN_SCHEMES


@pytest.fixture(scope="module")
def tiny_result():
    """One serial tiny sweep shared by the read-only assertions."""
    return zoo_sweep(scale=ZOO_TINY, jobs=1)


class TestZooSweep:
    def test_every_scheme_ranked_once(self, tiny_result):
        assert tiny_result.failures == []
        assert len(tiny_result.rows) == len(DEFAULT_SCHEMES)
        assert [row[0] for row in tiny_result.rows] == list(
            range(1, len(DEFAULT_SCHEMES) + 1)
        )
        assert sorted(tiny_result.ranking()) == sorted(KNOWN_SCHEMES)

    def test_ranking_orders_by_cloud_hit_rate(self, tiny_result):
        hit_rates = [row[2] for row in tiny_result.rows]
        assert hit_rates == sorted(hit_rates, reverse=True)

    def test_row_lookup_and_render(self, tiny_result):
        row = tiny_result.row("lce")
        assert row[1] == "lce"
        with pytest.raises(KeyError):
            tiny_result.row("nonesuch")
        rendered = tiny_result.render()
        assert "strategy ranking" in rendered
        assert all(scheme in rendered for scheme in KNOWN_SCHEMES)

    def test_schemes_differentiate(self, tiny_result):
        """The zoo is not a mirror hall: strategies disagree on stores."""
        stores = {row[1]: row[7] for row in tiny_result.rows}
        assert len(set(stores.values())) > 1

    def test_subset_sweep(self):
        result = zoo_sweep(scale=ZOO_TINY, schemes=("lce", "lcd"), jobs=1)
        assert result.ranking() and set(result.ranking()) == {"lce", "lcd"}

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            zoo_sweep(scale=ZOO_TINY, schemes=("mru",))

    def test_scale_validation(self):
        with pytest.raises(ValueError, match="must be positive"):
            ZooScale(
                label="bad", num_caches=0, num_rings=1, num_documents=10,
                request_rate_per_cache=1.0, update_rate=1.0,
                duration_minutes=1.0, cycle_length=1.0,
            )


class TestZooDeterminism:
    def test_jobs_one_and_two_fingerprint_identical(self, tiny_result):
        """The CI zoo-smoke invariant: parallelism never shifts a number."""
        parallel_result = zoo_sweep(scale=ZOO_TINY, jobs=2)
        assert fingerprint(parallel_result) == fingerprint(tiny_result)

    def test_streaming_matches_materialized(self, tiny_result):
        materialized = zoo_sweep(scale=ZOO_TINY, jobs=1, streaming=False)
        assert fingerprint(materialized) == fingerprint(tiny_result)

    def test_checkpointed_resume_fingerprint_identical(
        self, tiny_result, tmp_path
    ):
        path = tmp_path / "zoo.ckpt"
        first = zoo_sweep(scale=ZOO_TINY, jobs=1, checkpoint=path)
        resumed = zoo_sweep(scale=ZOO_TINY, jobs=1, checkpoint=path)
        assert fingerprint(first) == fingerprint(tiny_result)
        assert fingerprint(resumed) == fingerprint(tiny_result)

    def test_seed_override_changes_outcome(self, tiny_result):
        reseeded = zoo_sweep(scale=ZOO_TINY, jobs=1, seed=123)
        assert fingerprint(reseeded) != fingerprint(tiny_result)
