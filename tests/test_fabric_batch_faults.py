"""Batched dispatch equivalence while a fault injector is attached.

``send_system_batch`` and ``send_exchange`` take an optimized path when the
fabric is unobserved; attaching a :class:`~repro.faults.injector.FaultInjector`
forces both onto the general per-leg path. These tests pin the contract
that the batch is *equivalent* to its per-leg spelling with the injector in
place: identical meter/ledger totals, identical latencies and outcomes,
and identical RNG consumption — so a fault-injected sweep cannot diverge
depending on which spelling a protocol happens to use.
"""

import pytest

from repro.core.fabric import MessageFabric
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, RetryPolicy
from repro.network.bandwidth import TrafficCategory
from repro.network.topology import EuclideanTopology
from repro.network.transport import Transport

LEGS = [(0, 1, 512), (0, 2, 2048), (1, 2, 128)]


def _faulted_fabric(plan: FaultPlan, seed: int = 42) -> MessageFabric:
    coords = {0: (0.0, 0.0), 1: (30.0, 0.0), 2: (0.0, 40.0)}
    transport = Transport(topology=EuclideanTopology(dict(coords)))
    fabric = MessageFabric(transport)
    fabric.attach_faults(FaultInjector(plan, transport, seed=seed))
    return fabric


class TestSystemBatchUnderFaults:
    """System-plane batches bypass the injector — exactly like per-leg."""

    def test_batch_matches_per_leg_sends_with_injector_attached(self):
        plan = FaultPlan(loss_rate=1.0, retry=RetryPolicy(max_attempts=3))
        batched = _faulted_fabric(plan)
        per_leg = _faulted_fabric(plan)
        category = TrafficCategory.DIRECTORY_MIGRATION

        batch_latency = batched.send_system_batch(LEGS, category)
        leg_latency = max(
            per_leg.send_system(src, dst, num_bytes, category)
            for src, dst, num_bytes in LEGS
        )

        assert batch_latency == pytest.approx(leg_latency)
        assert batch_latency > 0.0  # the topology actually priced the legs
        assert batched.transport.meter == per_leg.transport.meter
        assert (
            batched.transport.messages_attempted
            == per_leg.transport.messages_attempted
            == len(LEGS)
        )
        assert (
            batched.transport.bytes_attempted
            == per_leg.transport.bytes_attempted
        )
        assert batched.stats.dispatches == per_leg.stats.dispatches == len(LEGS)

    def test_injector_never_sees_the_batch(self):
        plan = FaultPlan(loss_rate=1.0)
        fabric = _faulted_fabric(plan)
        fabric.send_system_batch(LEGS, TrafficCategory.DIRECTORY_MIGRATION)
        assert fabric.faults.stats.dropped == 0
        assert fabric.faults.stats.bytes_attempted == 0

    def test_batch_makes_no_random_draws(self):
        fabric = _faulted_fabric(FaultPlan(loss_rate=0.5))
        before = fabric.faults._rng.getstate()
        fabric.send_system_batch(LEGS, TrafficCategory.DIRECTORY_MIGRATION)
        assert fabric.faults._rng.getstate() == before


class TestExchangeUnderFaults:
    """A digest exchange is its two best-effort legs, draw for draw."""

    CATEGORY = TrafficCategory.ANTI_ENTROPY

    def _per_leg_exchange(self, fabric: MessageFabric):
        forward = fabric.send(0, 1, 300, self.CATEGORY, reliable=False)
        if not forward.ok:
            return (False, False)
        reverse = fabric.send(1, 0, 700, self.CATEGORY, reliable=False)
        return (True, reverse.ok)

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5, 6, 7, 8])
    def test_exchange_matches_per_leg_sends_seed_for_seed(self, seed):
        plan = FaultPlan(loss_rate=0.5)
        exchanged = _faulted_fabric(plan, seed=seed)
        per_leg = _faulted_fabric(plan, seed=seed)

        assert exchanged.send_exchange(
            0, 1, 300, 700, self.CATEGORY
        ) == self._per_leg_exchange(per_leg)
        assert exchanged.transport.meter == per_leg.transport.meter
        assert (
            exchanged.transport.messages_attempted
            == per_leg.transport.messages_attempted
        )
        assert (
            exchanged.transport.bytes_attempted
            == per_leg.transport.bytes_attempted
        )
        assert exchanged.stats.dispatches == per_leg.stats.dispatches
        # Same RNG draw count: the exchange consumes exactly what its
        # per-leg spelling would, so downstream seeded behaviour agrees.
        assert (
            exchanged.faults._rng.getstate()
            == per_leg.faults._rng.getstate()
        )

    def test_lossless_exchange_delivers_both_legs(self):
        fabric = _faulted_fabric(FaultPlan())
        assert fabric.send_exchange(0, 1, 300, 700, self.CATEGORY) == (
            True,
            True,
        )
        assert fabric.transport.messages_attempted == 2
        assert fabric.transport.bytes_attempted == 1000
