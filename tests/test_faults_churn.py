"""Unit tests for churn specs, schedules, and their safety rails."""

import pytest

from repro.faults.churn import (
    FAIL,
    RECOVER,
    ChurnEvent,
    ChurnSchedule,
    ChurnSpec,
    ChurnStats,
)
from repro.simulation.engine import Simulator
from tests.conftest import make_cloud


@pytest.fixture
def resilient_cloud(small_corpus):
    return make_cloud(
        small_corpus, num_caches=6, num_rings=2, failure_resilience=True
    )


class TestChurnEvent:
    def test_validation(self):
        with pytest.raises(ValueError):
            ChurnEvent(-1.0, 0, FAIL)
        with pytest.raises(ValueError):
            ChurnEvent(1.0, 0, "explode")


class TestChurnSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            ChurnSpec(duration_minutes=0.0)
        with pytest.raises(ValueError):
            ChurnSpec(duration_minutes=10.0, failure_rate_per_minute=-1.0)
        with pytest.raises(ValueError):
            ChurnSpec(duration_minutes=10.0, start_minutes=10.0)

    def test_poisson_timeline_is_deterministic(self):
        spec = ChurnSpec(
            duration_minutes=100.0, failure_rate_per_minute=0.2, seed=5
        )
        assert spec.build_events(8) == spec.build_events(8)

    def test_different_seeds_differ(self):
        a = ChurnSpec(duration_minutes=200.0, failure_rate_per_minute=0.2, seed=1)
        b = ChurnSpec(duration_minutes=200.0, failure_rate_per_minute=0.2, seed=2)
        assert a.build_events(8) != b.build_events(8)

    def test_fail_events_paired_with_recoveries(self):
        spec = ChurnSpec(
            duration_minutes=200.0, failure_rate_per_minute=0.1, seed=3
        )
        events = spec.build_events(8)
        fails = sum(1 for e in events if e.action == FAIL)
        recovers = sum(1 for e in events if e.action == RECOVER)
        assert fails > 0
        assert fails == recovers

    def test_events_sorted_by_time(self):
        spec = ChurnSpec(
            duration_minutes=200.0,
            failure_rate_per_minute=0.1,
            seed=3,
            events=(ChurnEvent(150.0, 0, FAIL),),
        )
        events = spec.build_events(8)
        assert events == sorted(events, key=lambda e: (e.time, e.cache_id, e.action))

    def test_zero_rate_keeps_only_scripted_events(self):
        scripted = (ChurnEvent(5.0, 1, FAIL), ChurnEvent(9.0, 1, RECOVER))
        spec = ChurnSpec(duration_minutes=10.0, events=scripted)
        assert tuple(spec.build_events(4)) == scripted


class TestChurnSchedule:
    def test_requires_failure_manager(self, small_corpus):
        cloud = make_cloud(small_corpus)  # no failure_resilience
        schedule = ChurnSchedule([ChurnEvent(1.0, 0, FAIL)])
        with pytest.raises(RuntimeError):
            schedule.apply_due(cloud, 2.0)

    def test_apply_due_fails_and_recovers(self, resilient_cloud):
        schedule = ChurnSchedule(
            [ChurnEvent(1.0, 0, FAIL), ChurnEvent(5.0, 0, RECOVER)]
        )
        schedule.apply_due(resilient_cloud, 2.0)
        assert not resilient_cloud.caches[0].alive
        schedule.apply_due(resilient_cloud, 6.0)
        assert resilient_cloud.caches[0].alive
        assert schedule.stats.failures == 1
        assert schedule.stats.recoveries == 1
        assert schedule.stats.unavailability_minutes == pytest.approx(4.0)
        assert schedule.stats.unavailability_windows == 1

    def test_apply_due_is_cursor_based(self, resilient_cloud):
        schedule = ChurnSchedule([ChurnEvent(1.0, 0, FAIL)])
        assert schedule.apply_due(resilient_cloud, 2.0) == 1
        assert schedule.apply_due(resilient_cloud, 3.0) == 0

    def test_skips_fail_of_dead_cache(self, resilient_cloud):
        schedule = ChurnSchedule(
            [ChurnEvent(1.0, 0, FAIL), ChurnEvent(2.0, 0, FAIL)]
        )
        schedule.apply_due(resilient_cloud, 3.0)
        assert schedule.stats.failures == 1
        assert schedule.stats.skipped == 1

    def test_skips_recover_of_live_cache(self, resilient_cloud):
        schedule = ChurnSchedule([ChurnEvent(1.0, 0, RECOVER)])
        schedule.apply_due(resilient_cloud, 2.0)
        assert schedule.stats.recoveries == 0
        assert schedule.stats.skipped == 1

    def test_never_empties_a_ring(self, small_corpus):
        # 2 caches / 2 rings: each ring has exactly one member, so every
        # fail event must be skipped rather than orphaning the documents.
        cloud = make_cloud(
            small_corpus, num_caches=2, num_rings=2, failure_resilience=True
        )
        schedule = ChurnSchedule(
            [ChurnEvent(1.0, 0, FAIL), ChurnEvent(2.0, 1, FAIL)]
        )
        schedule.apply_due(cloud, 3.0)
        assert schedule.stats.failures == 0
        assert schedule.stats.skipped == 2
        assert all(cache.alive for cache in cloud.caches)

    def test_attach_drives_events_through_simulator(self, resilient_cloud):
        simulator = Simulator()
        schedule = ChurnSchedule(
            [ChurnEvent(1.0, 0, FAIL), ChurnEvent(5.0, 0, RECOVER)]
        )
        schedule.attach(resilient_cloud, simulator)
        assert resilient_cloud.redirect_on_dead
        simulator.run_until(3.0)
        assert not resilient_cloud.caches[0].alive
        simulator.run_until(10.0)
        assert resilient_cloud.caches[0].alive
        assert resilient_cloud.failure_manager.failovers == 1
        assert resilient_cloud.failure_manager.recoveries == 1

    def test_redirects_requests_addressed_to_dead_cache(self, resilient_cloud):
        schedule = ChurnSchedule([ChurnEvent(1.0, 0, FAIL)])
        schedule.apply_due(resilient_cloud, 2.0)
        result = resilient_cloud.handle_request(0, 7, now=3.0)
        assert result is not None
        assert resilient_cloud.requests_redirected == 1

    def test_finalize_closes_open_windows(self, resilient_cloud):
        schedule = ChurnSchedule([ChurnEvent(1.0, 0, FAIL)])
        schedule.apply_due(resilient_cloud, 2.0)
        schedule.finalize(11.0)
        assert schedule.stats.unavailability_minutes == pytest.approx(10.0)
        assert schedule.stats.unavailability_windows == 1


class TestChurnStats:
    def test_close_without_open_is_noop(self):
        stats = ChurnStats()
        stats.close_window(3, 10.0)
        assert stats.unavailability_windows == 0

    def test_as_dict_keys(self):
        stats = ChurnStats(failures=2, recoveries=1, skipped=1)
        summary = stats.as_dict()
        assert summary["churn_failures"] == 2.0
        assert summary["churn_recoveries"] == 1.0
        assert summary["churn_skipped"] == 1.0
