"""Unit tests for the fault plan and the seeded injector."""

import random

import pytest

from repro.faults.injector import FaultInjector, FaultStats
from repro.faults.plan import NO_FAULTS, FaultPlan, RetryPolicy
from repro.network.bandwidth import TrafficCategory
from repro.network.transport import (
    CONTROL_MESSAGE_BYTES,
    TRANSFER_HEADER_BYTES,
    Transport,
)


class TestRetryPolicy:
    def test_defaults_valid(self):
        policy = RetryPolicy()
        assert policy.max_attempts >= 1

    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(backoff_base_minutes=0.25, backoff_factor=2.0)
        assert policy.backoff_minutes(0) == 0.25
        assert policy.backoff_minutes(1) == 0.5
        assert policy.backoff_minutes(2) == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"timeout_minutes": -1.0},
            {"backoff_base_minutes": -0.1},
            {"backoff_factor": 0.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestFaultPlan:
    def test_no_faults_is_disabled(self):
        assert not NO_FAULTS.enabled

    def test_any_rate_enables(self):
        assert FaultPlan(loss_rate=0.1).enabled
        assert FaultPlan(duplicate_rate=0.1).enabled
        assert FaultPlan(delay_rate=0.1, delay_minutes=1.0).enabled
        assert FaultPlan(partitioned_links=((0, 1),)).enabled
        assert FaultPlan(category_loss=(("control", 0.5),)).enabled
        assert FaultPlan(link_loss=((0, 1, 0.5),)).enabled

    def test_zero_overrides_do_not_enable(self):
        assert not FaultPlan(category_loss=(("control", 0.0),)).enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"loss_rate": 1.5},
            {"duplicate_rate": -0.1},
            {"delay_minutes": -1.0},
            {"category_loss": (("bogus", 0.5),)},
            {"category_loss": (("control", 2.0),)},
            {"link_loss": ((0, 1, -0.5),)},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs)

    def test_partition_is_undirected(self):
        plan = FaultPlan(partitioned_links=((3, 1),))
        assert plan.is_partitioned(1, 3)
        assert plan.is_partitioned(3, 1)
        assert not plan.is_partitioned(1, 2)

    def test_loss_precedence_link_over_category_over_default(self):
        plan = FaultPlan(
            loss_rate=0.1,
            category_loss=(("control", 0.2),),
            link_loss=((0, 1, 0.9),),
        )
        assert plan.loss_for(TrafficCategory.CONTROL, 1, 0) == 0.9
        assert plan.loss_for(TrafficCategory.CONTROL, 0, 2) == 0.2
        assert plan.loss_for(TrafficCategory.PEER_TRANSFER, 0, 2) == 0.1

    def test_plan_is_hashable_and_frozen(self):
        plan = FaultPlan(loss_rate=0.5)
        hash(plan)
        with pytest.raises(AttributeError):
            plan.loss_rate = 0.1


class TestTransientPartitions:
    def test_heals_at_heal_minute(self):
        plan = FaultPlan(partitioned_links=((0, 1, 5.0),))
        assert plan.is_partitioned(0, 1, now=0.0)
        assert plan.is_partitioned(1, 0, now=4.99)
        assert not plan.is_partitioned(0, 1, now=5.0)  # heal bound inclusive
        assert not plan.is_partitioned(0, 1, now=100.0)

    def test_two_tuple_never_heals(self):
        plan = FaultPlan(partitioned_links=((0, 1),))
        assert plan.is_partitioned(0, 1, now=1e9)

    def test_mixed_entries_checked_independently(self):
        plan = FaultPlan(partitioned_links=((0, 1, 2.0), (2, 3)))
        assert not plan.is_partitioned(0, 1, now=3.0)
        assert plan.is_partitioned(2, 3, now=3.0)
        assert plan.is_partitioned(3, 2, now=3.0)

    def test_transient_plan_is_hashable(self):
        hash(FaultPlan(partitioned_links=((0, 1, 5.0),)))

    @pytest.mark.parametrize(
        "entry", [(0,), (0, 1, 2.0, 3.0), (0, 1, -1.0)]
    )
    def test_validation(self, entry):
        with pytest.raises(ValueError):
            FaultPlan(partitioned_links=(entry,))


class TestFaultInjector:
    def test_zero_plan_is_pure_passthrough(self):
        """A zero plan charges the meter exactly like a bare transport and
        consumes no randomness at all."""
        bare = Transport()
        faulty = Transport()
        injector = FaultInjector(NO_FAULTS, faulty)
        state_before = injector._rng.getstate()
        for src, dst in [(0, 1), (1, 2), (2, 0)]:
            expected = bare.send_control(src, dst)
            assert injector.deliver_control(src, dst) == expected
            expected = bare.send_document(
                src, dst, 4096, TrafficCategory.PEER_TRANSFER
            )
            assert (
                injector.deliver_document(
                    src, dst, 4096, TrafficCategory.PEER_TRANSFER
                )
                == expected
            )
        assert injector._rng.getstate() == state_before
        assert bare.meter == faulty.meter
        assert injector.stats.dropped == 0
        assert injector.stats.delivered == 6

    def test_certain_loss_drops_everything(self):
        injector = FaultInjector(FaultPlan(loss_rate=1.0), Transport())
        for _ in range(5):
            assert injector.deliver_control(0, 1) is None
        assert injector.stats.dropped == 5
        assert injector.stats.delivered == 0

    def test_dropped_messages_still_charge_the_meter(self):
        transport = Transport()
        injector = FaultInjector(FaultPlan(loss_rate=1.0), transport)
        injector.deliver_control(0, 1)
        assert transport.meter.total_bytes == CONTROL_MESSAGE_BYTES

    def test_partition_drops_without_rng(self):
        injector = FaultInjector(
            FaultPlan(partitioned_links=((0, 1),)), Transport()
        )
        state_before = injector._rng.getstate()
        assert injector.deliver_control(1, 0) is None
        assert injector._rng.getstate() == state_before
        assert injector.deliver_control(0, 2) is not None

    def test_duplicates_charge_twice(self):
        transport = Transport()
        injector = FaultInjector(FaultPlan(duplicate_rate=1.0), transport)
        latency = injector.deliver_control(0, 1)
        assert latency is not None
        assert transport.meter.total_bytes == 2 * CONTROL_MESSAGE_BYTES
        assert injector.stats.duplicated == 1

    def test_delay_adds_latency(self):
        injector = FaultInjector(
            FaultPlan(delay_rate=1.0, delay_minutes=2.5), Transport()
        )
        assert injector.deliver_control(0, 1) == pytest.approx(2.5)
        assert injector.stats.delayed == 1

    def test_document_includes_header(self):
        transport = Transport()
        injector = FaultInjector(NO_FAULTS, transport)
        injector.deliver_document(0, 1, 1000, TrafficCategory.PEER_TRANSFER)
        assert transport.meter.total_bytes == 1000 + TRANSFER_HEADER_BYTES

    def test_document_requires_positive_size(self):
        injector = FaultInjector(NO_FAULTS, Transport())
        with pytest.raises(ValueError):
            injector.deliver_document(0, 1, 0, TrafficCategory.PEER_TRANSFER)

    def test_same_seed_same_fault_sequence(self):
        plan = FaultPlan(seed=11, loss_rate=0.4)
        outcomes = []
        for _ in range(2):
            injector = FaultInjector(plan, Transport())
            outcomes.append(
                [injector.deliver_control(0, 1) is None for _ in range(50)]
            )
        assert outcomes[0] == outcomes[1]
        assert any(outcomes[0])  # some drops
        assert not all(outcomes[0])  # some deliveries

    def test_seed_override_changes_sequence(self):
        plan = FaultPlan(seed=11, loss_rate=0.4)
        a = FaultInjector(plan, Transport())
        b = FaultInjector(plan, Transport(), seed=999)
        seq_a = [a.deliver_control(0, 1) is None for _ in range(100)]
        seq_b = [b.deliver_control(0, 1) is None for _ in range(100)]
        assert seq_a != seq_b

    def test_drops_decompose_by_category(self):
        injector = FaultInjector(
            FaultPlan(category_loss=(("control", 1.0),)), Transport()
        )
        injector.deliver_control(0, 1)
        assert injector.deliver_document(
            0, 1, 100, TrafficCategory.PEER_TRANSFER
        ) is not None
        assert injector.stats.dropped_by_category == {"control": 1}

    def test_stats_attempts(self):
        stats = FaultStats(delivered=3, dropped=2)
        assert stats.attempts == 5
        assert stats.as_dict()["messages_dropped"] == 2.0

    def test_without_clock_transient_partition_acts_permanent(self):
        # Time is pinned at 0.0, which is always before the heal minute.
        injector = FaultInjector(
            FaultPlan(partitioned_links=((0, 1, 5.0),)), Transport()
        )
        for _ in range(3):
            assert injector.deliver_control(0, 1) is None

    def test_clock_heals_transient_partition(self):
        now = [0.0]
        injector = FaultInjector(
            FaultPlan(partitioned_links=((0, 1, 5.0),)),
            Transport(),
            clock=lambda: now[0],
        )
        assert injector.deliver_control(0, 1) is None
        now[0] = 5.0
        assert injector.deliver_control(0, 1) is not None
        assert injector.stats.dropped == 1
        assert injector.stats.delivered == 1

    def test_bytes_attempted_counts_drops_and_duplicates(self):
        injector = FaultInjector(FaultPlan(loss_rate=1.0), Transport())
        injector.deliver_control(0, 1)
        assert injector.stats.bytes_attempted == CONTROL_MESSAGE_BYTES

        duplicator = FaultInjector(FaultPlan(duplicate_rate=1.0), Transport())
        duplicator.deliver_control(0, 1)
        assert duplicator.stats.bytes_attempted == 2 * CONTROL_MESSAGE_BYTES

    def test_attempt_ledger_matches_transport(self):
        transport = Transport()
        injector = FaultInjector(
            FaultPlan(seed=9, loss_rate=0.5, duplicate_rate=0.3), transport
        )
        for i in range(50):
            injector.deliver_control(i % 4, (i + 1) % 4)
        assert injector.stats.bytes_attempted == transport.bytes_attempted
        assert transport.meter.total_bytes == transport.bytes_attempted
