"""Golden-fingerprint lock on the experiment pipeline.

The hashes below were captured on the pre-refactor protocol code (the
forked ``_serve_miss_with_faults`` / ``_serve_miss_cooperatively``
implementation, commit 4e9eab7) and lock the unified protocol plane to
value-identity: every outcome, latency, byte count, and resilience counter
of these three pipelines feeds the canonical-JSON hash, so any behavioural
drift in the miss path, the update path, fault handling, or churn
scheduling changes a fingerprint.

If a fingerprint breaks, the refactor-safety contract is: either the
change is an intentional, documented behavioural change (re-capture the
hash and say why in the commit), or it is a regression (fix it). Never
re-capture to silence a diff you cannot explain.

The configs are TINY on purpose (~1-2 s each); the full-scale figures are
exercised by ``benchmarks/``.
"""

from repro.experiments.figures import TINY_SCALE, figure3, figure6
from repro.experiments.reporting import fingerprint
from repro.experiments.resilience import resilience_sweep

#: Captured on pre-refactor code; see module docstring before touching.
GOLDEN_FIGURE3 = (
    "e011005ac70243d6284d2689a3312c1e11b7d71165137874b3a245f89eb79e28"
)
GOLDEN_FIGURE6 = (
    "c25dbd4daecdb50dbfdbcbe8a9ca4b5b7f88fb7e0f8bb8a5d6ade106a6b3bcd3"
)
GOLDEN_RESILIENCE = (
    "46180117cf904e758b50903e4e501de9a603eae8677719367973c609b7516d9e"
)


class TestGoldenFingerprints:
    def test_figure3_fingerprint_unchanged(self):
        result = figure3(TINY_SCALE, jobs=1)
        assert fingerprint(result) == GOLDEN_FIGURE3

    def test_figure6_fingerprint_unchanged(self):
        result = figure6(TINY_SCALE, alphas=(0.0, 0.9), jobs=1)
        assert fingerprint(result) == GOLDEN_FIGURE6

    def test_resilience_fingerprint_unchanged(self):
        result = resilience_sweep(
            TINY_SCALE,
            loss_rates=(0.0, 0.2),
            churn_rates=(0.0, 0.05),
            jobs=1,
        )
        assert fingerprint(result) == GOLDEN_RESILIENCE
