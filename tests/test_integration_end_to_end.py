"""End-to-end integration tests: full pipeline over generated workloads."""

import pytest

from repro.core.cloud import CacheCloud, RequestOutcome
from repro.core.config import (
    AssignmentScheme,
    CloudConfig,
    PlacementScheme,
    UtilityWeights,
)
from repro.experiments.runner import run_experiment
from repro.network.bandwidth import TrafficCategory
from repro.workload.documents import build_corpus
from repro.workload.generator import SyntheticTraceGenerator, WorkloadConfig


def build_workload(num_docs=150, num_caches=6, duration=40.0, update_rate=20.0, seed=3):
    corpus = build_corpus(num_docs, fixed_size=2048)
    generator = SyntheticTraceGenerator(
        WorkloadConfig(
            num_documents=num_docs,
            num_caches=num_caches,
            request_rate_per_cache=25.0,
            update_rate=update_rate,
            alpha_requests=0.9,
            duration_minutes=duration,
            seed=seed,
        )
    )
    return corpus, generator.build_trace()


def cloud_config(**overrides):
    defaults = dict(
        num_caches=6,
        num_rings=3,
        intra_gen=200,
        cycle_length=8.0,
        placement=PlacementScheme.UTILITY,
        utility_weights=UtilityWeights.equal_over(["afc", "dai", "cmc"]),
    )
    defaults.update(overrides)
    return CloudConfig(**defaults)


class TestFullPipeline:
    @pytest.fixture(scope="class")
    def result(self):
        corpus, trace = build_workload()
        return run_experiment(
            cloud_config(), corpus, trace.requests, trace.updates, duration=40.0
        )

    def test_every_request_was_served(self, result):
        stats = result.stats
        served = stats.local_hits + stats.cloud_hits + stats.origin_fetches
        assert served == stats.requests

    def test_cloud_hit_rate_is_meaningful(self, result):
        # Cooperation must actually happen on a Zipf workload.
        assert result.stats.cloud_hit_rate > 0.3

    def test_traffic_flows_in_every_expected_category(self, result):
        meter = result.traffic
        assert meter.bytes_for(TrafficCategory.ORIGIN_FETCH) > 0
        assert meter.bytes_for(TrafficCategory.PEER_TRANSFER) > 0
        assert meter.bytes_for(TrafficCategory.CONTROL) > 0
        assert meter.bytes_for(TrafficCategory.UPDATE_SERVER_TO_BEACON) > 0

    def test_cycles_ran(self, result):
        assert result.cloud.cycles_run >= 4


class TestDirectoryGroundTruth:
    """The lookup directory must agree with reality at all times."""

    def test_directory_matches_storage_after_long_run(self):
        corpus, trace = build_workload(update_rate=40.0)
        config = cloud_config(capacity_bytes=40 * 2048)  # forces evictions
        cloud = CacheCloud(config, corpus)
        for record in trace.merged():
            from repro.workload.trace import UpdateRecord

            if isinstance(record, UpdateRecord):
                cloud.handle_update(record.doc_id, record.time)
            else:
                cloud.handle_request(record.cache_id, record.doc_id, record.time)
            if cloud.requests_handled % 500 == 0:
                cloud.run_cycle(record.time)
        # Invariant: for every document, the directory entry at its beacon
        # equals the set of caches actually storing the document.
        for doc_id in range(len(corpus)):
            beacon = cloud.beacon_for_doc(doc_id)
            recorded = cloud.beacons[beacon].directory.holders(doc_id)
            truth = cloud.holders_of(doc_id)
            assert recorded == truth, f"doc {doc_id}: {recorded} != {truth}"
        # And no other beacon claims the document.
        for doc_id in range(len(corpus)):
            beacon = cloud.beacon_for_doc(doc_id)
            for other_id, state in cloud.beacons.items():
                if other_id != beacon:
                    assert not state.directory.knows(doc_id)


class TestSchemeComparison:
    def test_dynamic_beats_static_on_skewed_load(self):
        """The paper's core claim at integration level.

        A single 6-member beacon ring is used so the comparison isolates the
        sub-range determination mechanism: with multiple tiny rings at this
        scale, the (unbalanceable) ring-assignment luck of a 400-document
        corpus dominates the statistic.
        """
        corpus, trace = build_workload(num_docs=400, duration=60.0, update_rate=60.0)
        covs = {}
        for scheme in (AssignmentScheme.STATIC, AssignmentScheme.DYNAMIC):
            result = run_experiment(
                cloud_config(
                    assignment=scheme,
                    num_rings=1,
                    placement=PlacementScheme.BEACON,
                    cycle_length=6.0,
                ),
                corpus,
                trace.requests,
                trace.updates,
                duration=60.0,
                warmup=12.0,
            )
            covs[scheme] = result.load_stats.cov
        assert covs[AssignmentScheme.DYNAMIC] < covs[AssignmentScheme.STATIC]

    def test_cooperation_reduces_origin_load(self):
        corpus, trace = build_workload()
        results = {}
        for cooperation in (True, False):
            result = run_experiment(
                cloud_config(cooperation=cooperation, placement=PlacementScheme.AD_HOC),
                corpus,
                trace.requests,
                trace.updates,
                duration=40.0,
                warmup=0.0,
            )
            results[cooperation] = result.cloud.origin.fetches_served
        assert results[True] < results[False]

    def test_cooperation_reduces_server_update_messages(self):
        corpus, trace = build_workload(update_rate=60.0)
        messages = {}
        for cooperation in (True, False):
            result = run_experiment(
                cloud_config(cooperation=cooperation, placement=PlacementScheme.AD_HOC),
                corpus,
                trace.requests,
                trace.updates,
                duration=40.0,
                warmup=0.0,
            )
            messages[cooperation] = result.cloud.origin.update_messages_sent
        # One message per cloud vs one per holder: cooperation sends fewer.
        assert messages[True] < messages[False]


class TestLatencyWithTopology:
    def test_latencies_reflect_topology(self):
        import random

        from repro.network.origin import ORIGIN_NODE_ID, OriginServer
        from repro.network.topology import EuclideanTopology
        from repro.network.transport import Transport

        corpus = build_corpus(50, fixed_size=1024)
        topo = EuclideanTopology.random(6, random.Random(0), extent=600.0)
        topo.add_node(ORIGIN_NODE_ID, (3000.0, 3000.0))  # origin is far away
        config = cloud_config(placement=PlacementScheme.AD_HOC)
        cloud = CacheCloud(
            config,
            corpus,
            origin=OriginServer(corpus),
            transport=Transport(topology=topo),
        )
        first = cloud.handle_request(0, 7, now=0.0)  # origin fetch, far
        second = cloud.handle_request(1, 7, now=1.0)  # peer fetch, near
        third = cloud.handle_request(1, 7, now=2.0)  # local hit
        assert first.latency_ms > second.latency_ms > third.latency_ms
        assert third.latency_ms == 0.0


class TestByteConservation:
    def test_meter_matches_protocol_reconstruction(self):
        """Every metered byte is explainable from first principles.

        Replays a workload with protocol capture on and reconstructs the
        expected byte totals per category from the cloud's own counters:
        the meter must agree exactly — any drift means a code path accounts
        traffic twice or not at all.
        """
        from repro.core.cloud import CacheCloud
        from repro.network.transport import (
            CONTROL_MESSAGE_BYTES,
            TRANSFER_HEADER_BYTES,
        )

        corpus = build_corpus(80, fixed_size=4096)
        config = cloud_config(placement=PlacementScheme.AD_HOC)
        cloud = CacheCloud(config, corpus, capture_protocol=True)
        from repro.workload.generator import SyntheticTraceGenerator, WorkloadConfig

        trace = SyntheticTraceGenerator(
            WorkloadConfig(
                num_documents=80,
                num_caches=6,
                request_rate_per_cache=20.0,
                update_rate=15.0,
                duration_minutes=20.0,
                seed=8,
            )
        ).build_trace()
        for record in trace.merged():
            from repro.workload.trace import UpdateRecord

            if isinstance(record, UpdateRecord):
                cloud.handle_update(record.doc_id, record.time)
            else:
                cloud.handle_request(record.cache_id, record.doc_id, record.time)

        meter = cloud.transport.meter
        body = 4096 + TRANSFER_HEADER_BYTES
        stats = cloud.aggregate_stats()

        # Peer transfers: one per cloud hit.
        assert meter.bytes_for(TrafficCategory.PEER_TRANSFER) == (
            stats.cloud_hits * body
        )
        # Origin fetches: one per group miss.
        assert meter.bytes_for(TrafficCategory.ORIGIN_FETCH) == (
            stats.origin_fetches * body
        )
        # Server -> beacon bodies: one per update that found holders.
        from repro.core.protocol import UpdateNotice, UpdatePush

        notices = [
            n for n in cloud.trace.of_type(UpdateNotice) if n.carries_body
        ]
        assert meter.bytes_for(TrafficCategory.UPDATE_SERVER_TO_BEACON) == (
            len(notices) * body
        )
        # Fan-out pushes: exactly the captured UpdatePush messages.
        pushes = cloud.trace.of_type(UpdatePush)
        assert meter.bytes_for(TrafficCategory.UPDATE_FANOUT) == len(pushes) * body
        # Control messages are all CONTROL_MESSAGE_BYTES-sized.
        assert meter.bytes_for(TrafficCategory.CONTROL) == (
            meter.messages_for(TrafficCategory.CONTROL) * CONTROL_MESSAGE_BYTES
        )
