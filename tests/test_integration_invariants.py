"""Property-based invariant tests over randomized operation sequences.

A hypothesis-driven "model check" of the cloud: random interleavings of
requests, updates, cycles, failures, and recoveries must preserve the
system's safety invariants (directory soundness, partition totality,
freshness of pushed copies).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cloud import CacheCloud
from repro.core.config import CloudConfig, PlacementScheme
from repro.workload.documents import build_corpus

NUM_CACHES = 4
NUM_DOCS = 25


def build_cloud(capacity=None, resilience=False):
    corpus = build_corpus(NUM_DOCS, fixed_size=1024)
    config = CloudConfig(
        num_caches=NUM_CACHES,
        num_rings=2,
        intra_gen=64,
        cycle_length=5.0,
        placement=PlacementScheme.AD_HOC,
        capacity_bytes=capacity,
        failure_resilience=resilience,
    )
    return CacheCloud(config, corpus)


operations = st.lists(
    st.one_of(
        st.tuples(
            st.just("request"),
            st.integers(0, NUM_CACHES - 1),
            st.integers(0, NUM_DOCS - 1),
        ),
        st.tuples(st.just("update"), st.integers(0, NUM_DOCS - 1), st.none()),
        st.tuples(st.just("cycle"), st.none(), st.none()),
    ),
    max_size=120,
)


def check_directory_soundness(cloud):
    """Directory claims ⊆ ground truth, and beacons own disjoint doc sets."""
    seen_docs = {}
    for beacon_id, state in cloud.beacons.items():
        for doc_id in state.directory:
            assert doc_id not in seen_docs, (
                f"doc {doc_id} known to beacons {seen_docs[doc_id]} and {beacon_id}"
            )
            seen_docs[doc_id] = beacon_id
            holders = state.directory.holders(doc_id)
            truth = cloud.holders_of(doc_id)
            assert holders <= truth | set(), f"doc {doc_id}: {holders} vs {truth}"


def check_partition_totality(cloud):
    for ring in cloud.assigner.rings:
        total = sum(ring.arc_of(m).width for m in ring.members)
        assert total == ring.intra_gen


def check_freshness(cloud):
    """Every resident copy registered at its beacon must be fresh."""
    for doc_id in range(NUM_DOCS):
        version = cloud.origin.version_of(doc_id)
        beacon = cloud.beacon_for_doc(doc_id)
        for holder in cloud.beacons[beacon].directory.holders(doc_id):
            copy = cloud.caches[holder].copy_of(doc_id)
            assert copy is not None
            assert copy.version == version


@given(ops=operations)
@settings(max_examples=30, deadline=None)
def test_invariants_unlimited_disk(ops):
    cloud = build_cloud()
    now = 0.0
    for op in ops:
        now += 0.1
        kind = op[0]
        if kind == "request":
            cloud.handle_request(op[1], op[2], now)
        elif kind == "update":
            cloud.handle_update(op[1], now)
        else:
            cloud.run_cycle(now)
    check_directory_soundness(cloud)
    check_partition_totality(cloud)
    check_freshness(cloud)


@given(ops=operations)
@settings(max_examples=30, deadline=None)
def test_invariants_limited_disk(ops):
    cloud = build_cloud(capacity=5 * 1024)  # room for 5 documents per cache
    now = 0.0
    for op in ops:
        now += 0.1
        kind = op[0]
        if kind == "request":
            cloud.handle_request(op[1], op[2], now)
        elif kind == "update":
            cloud.handle_update(op[1], now)
        else:
            cloud.run_cycle(now)
    check_directory_soundness(cloud)
    check_partition_totality(cloud)
    check_freshness(cloud)
    for cache in cloud.caches:
        assert cache.storage.used_bytes <= 5 * 1024


failure_operations = st.lists(
    st.one_of(
        st.tuples(
            st.just("request"),
            st.integers(0, NUM_CACHES - 1),
            st.integers(0, NUM_DOCS - 1),
        ),
        st.tuples(st.just("update"), st.integers(0, NUM_DOCS - 1), st.none()),
        st.tuples(st.just("cycle"), st.none(), st.none()),
        st.tuples(st.just("fail"), st.integers(0, NUM_CACHES - 1), st.none()),
        st.tuples(st.just("recover"), st.integers(0, NUM_CACHES - 1), st.none()),
    ),
    max_size=100,
)


@given(ops=failure_operations)
@settings(max_examples=30, deadline=None)
def test_invariants_under_failures(ops):
    cloud = build_cloud(resilience=True)
    now = 0.0
    down = set()
    for op in ops:
        now += 0.1
        kind = op[0]
        if kind == "request":
            cache_id = op[1]
            if cache_id in down:
                continue
            cloud.handle_request(cache_id, op[2], now)
        elif kind == "update":
            cloud.handle_update(op[1], now)
        elif kind == "cycle":
            cloud.run_cycle(now)
        elif kind == "fail":
            cache_id = op[1]
            ring_index, _ = cloud.failure_manager._home[cache_id]
            ring = cloud.assigner.rings[ring_index]
            # Keep at least one live member per ring, and an arc wide enough
            # to split on recovery.
            if cache_id in down or len(ring.members) <= 1:
                continue
            cloud.fail_cache(cache_id, now)
            down.add(cache_id)
        else:  # recover
            cache_id = op[1]
            if cache_id not in down:
                continue
            try:
                cloud.recover_cache(cache_id, now)
            except ValueError:
                # Donor arc too narrow to split — legal corner; node stays down.
                cloud.caches[cache_id].fail(now)
                continue
            down.discard(cache_id)
    check_partition_totality(cloud)
    # After failures, directories may be conservative (scrubbed) but must
    # never name a dead cache or a non-holder as a holder for serving.
    for beacon_id, state in cloud.beacons.items():
        if beacon_id in down:
            continue
        for doc_id in list(state.directory):
            for holder in state.directory.holders(doc_id):
                assert holder not in down
