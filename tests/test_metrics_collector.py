"""Unit tests for the periodic cloud monitor."""

import pytest

from repro.core.cloud import CacheCloud
from repro.core.config import CloudConfig, PlacementScheme
from repro.experiments.runner import TraceFeeder
from repro.metrics.collector import CloudMonitor
from repro.simulation.engine import Simulator
from repro.workload.documents import build_corpus
from repro.workload.trace import RequestRecord, Trace, UpdateRecord


def build_cloud():
    corpus = build_corpus(40, fixed_size=1024)
    config = CloudConfig(
        num_caches=4,
        num_rings=2,
        intra_gen=100,
        cycle_length=10.0,
        placement=PlacementScheme.AD_HOC,
    )
    return CacheCloud(config, corpus)


def trace_for(duration=40.0):
    requests = [
        RequestRecord(t * 0.2, int(t) % 4, int(t * 7) % 40)
        for t in range(int(duration * 5))
    ]
    updates = [UpdateRecord(float(t) + 0.5, t % 40) for t in range(int(duration))]
    return Trace(requests=requests, updates=updates)


class TestCloudMonitor:
    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            CloudMonitor(build_cloud(), Simulator(), period=0.0)

    def test_samples_on_period(self):
        cloud = build_cloud()
        sim = Simulator()
        monitor = CloudMonitor(cloud, sim, period=10.0)
        monitor.start()
        TraceFeeder(sim, cloud, trace_for().merged()).start()
        sim.run_until(40.0)
        assert monitor.samples == 4
        for name, series in monitor.series.items():
            assert len(series) == 4, name

    def test_windowed_hit_rate_rises_as_cache_warms(self):
        cloud = build_cloud()
        sim = Simulator()
        monitor = CloudMonitor(cloud, sim, period=10.0)
        monitor.start()
        TraceFeeder(sim, cloud, trace_for().merged()).start()
        sim.run_until(40.0)
        rates = [v for _, v in monitor.series["cloud_hit_rate"].items()]
        assert rates[-1] > rates[0]
        assert all(0.0 <= r <= 1.0 for r in rates)

    def test_network_mb_is_windowed_not_cumulative(self):
        cloud = build_cloud()
        sim = Simulator()
        monitor = CloudMonitor(cloud, sim, period=10.0)
        monitor.start()
        TraceFeeder(sim, cloud, trace_for().merged()).start()
        sim.run_until(40.0)
        windows = [v for _, v in monitor.series["network_mb"].items()]
        total = cloud.transport.meter.total_bytes / (1024.0 * 1024.0)
        assert sum(windows) == pytest.approx(total, rel=0.01)

    def test_idle_windows_report_neutral_balance(self):
        cloud = build_cloud()
        sim = Simulator()
        monitor = CloudMonitor(cloud, sim, period=5.0)
        monitor.start()
        sim.run_until(20.0)  # no traffic at all
        covs = [v for _, v in monitor.series["beacon_cov"].items()]
        assert covs == [0.0] * 4
        ptm = [v for _, v in monitor.series["beacon_peak_to_mean"].items()]
        assert ptm == [1.0] * 4

    def test_stop_halts_sampling(self):
        cloud = build_cloud()
        sim = Simulator()
        monitor = CloudMonitor(cloud, sim, period=5.0)
        monitor.start()
        sim.run_until(10.0)
        monitor.stop()
        sim.run_until(40.0)
        assert monitor.samples == 2

    def test_docs_stored_gauge(self):
        cloud = build_cloud()
        sim = Simulator()
        monitor = CloudMonitor(cloud, sim, period=10.0)
        monitor.start()
        TraceFeeder(sim, cloud, trace_for().merged()).start()
        sim.run_until(40.0)
        gauges = [v for _, v in monitor.series["docs_stored"].items()]
        resident = sum(len(c.storage) for c in cloud.caches)
        assert gauges[-1] == float(resident)


class TestLatencySeries:
    """The windowed p50/p99 series that appear when telemetry is attached."""

    def build_traced(self, period=10.0):
        from repro.observe import Telemetry

        cloud = build_cloud()
        cloud.attach_telemetry(Telemetry())
        sim = Simulator()
        monitor = CloudMonitor(cloud, sim, period=period)
        monitor.start()
        TraceFeeder(sim, cloud, trace_for().merged()).start()
        sim.run_until(40.0)
        return cloud, monitor

    def test_absent_without_telemetry(self):
        cloud = build_cloud()
        monitor = CloudMonitor(cloud, Simulator(), period=10.0)
        assert "request_p50_ms" not in monitor.series
        assert "request_p99_ms" not in monitor.series

    def test_present_and_sampled_with_telemetry(self):
        _, monitor = self.build_traced()
        for name in ("request_p50_ms", "request_p99_ms"):
            series = monitor.series[name]
            assert len(series) == 4
            assert all(v >= 0.0 for _, v in series.items())

    def test_p99_dominates_p50(self):
        _, monitor = self.build_traced()
        p50 = [v for _, v in monitor.series["request_p50_ms"].items()]
        p99 = [v for _, v in monitor.series["request_p99_ms"].items()]
        assert all(hi >= lo for lo, hi in zip(p50, p99))

    def test_windows_match_raw_series(self):
        cloud, monitor = self.build_traced()
        latencies = cloud.telemetry.request_latencies
        samples = monitor.series["request_p99_ms"].items()
        start = 0.0
        for now, value in samples:
            expected = latencies.percentile_in(start, now, 0.99)
            assert value == (expected if expected is not None else 0.0)
            start = now

    def test_idle_windows_report_zero(self):
        from repro.observe import Telemetry

        cloud = build_cloud()
        cloud.attach_telemetry(Telemetry())
        sim = Simulator()
        monitor = CloudMonitor(cloud, sim, period=5.0)
        monitor.start()
        sim.run_until(10.0)  # no traffic
        assert [v for _, v in monitor.series["request_p50_ms"].items()] == [0.0, 0.0]
