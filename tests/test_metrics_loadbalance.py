"""Unit + property tests for load-balance statistics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.loadbalance import (
    coefficient_of_variation,
    improvement_percent,
    load_balance_stats,
    mean,
    peak_to_mean,
    std_deviation,
)


class TestBasics:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])
        with pytest.raises(ValueError):
            coefficient_of_variation([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            mean([1.0, -1.0])

    def test_mean_and_std(self):
        loads = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        assert mean(loads) == 5.0
        assert std_deviation(loads) == pytest.approx(2.0)

    def test_cov_of_uniform_is_zero(self):
        assert coefficient_of_variation([5.0, 5.0, 5.0]) == 0.0

    def test_cov_of_all_zero_is_zero(self):
        assert coefficient_of_variation([0.0, 0.0]) == 0.0

    def test_peak_to_mean(self):
        assert peak_to_mean([1.0, 1.0, 4.0]) == 2.0
        assert peak_to_mean([0.0, 0.0]) == 1.0

    def test_stats_bundle(self):
        stats = load_balance_stats([1.0, 3.0])
        assert stats.mean == 2.0
        assert stats.peak == 3.0
        assert stats.min == 1.0
        assert stats.spread == 2.0
        assert stats.peak_to_mean == 1.5
        assert stats.cov == pytest.approx(0.5)


class TestImprovement:
    def test_positive_when_improved_is_lower(self):
        assert improvement_percent(2.0, 1.0) == 50.0

    def test_negative_when_worse(self):
        assert improvement_percent(1.0, 2.0) == -100.0

    def test_zero_baseline(self):
        assert improvement_percent(0.0, 1.0) == 0.0


# Subnormals are excluded: doubling a subnormal rounds (2 * 5e-324 loses
# scale invariance), which fails the dimensionless-statistics assertions
# below for reasons that have nothing to do with the statistics.
positive_loads = st.lists(
    st.floats(
        min_value=0.0, max_value=1e9, allow_nan=False, allow_subnormal=False
    ),
    min_size=1,
    max_size=50,
)


@given(loads=positive_loads)
@settings(max_examples=100, deadline=None)
def test_statistics_invariants(loads):
    stats = load_balance_stats(loads)
    # One-ulp tolerance: summing identical large floats rounds the mean.
    tol = 1e-9 * max(1.0, stats.peak)
    assert stats.min <= stats.mean + tol
    assert stats.mean <= stats.peak + tol
    assert stats.cov >= 0.0
    assert stats.peak_to_mean >= 1.0 - 1e-9 or stats.mean == 0.0
    # Scale invariance of the dimensionless statistics.
    scaled = load_balance_stats([2.0 * v for v in loads])
    assert scaled.cov == pytest.approx(stats.cov, rel=1e-9, abs=1e-12)
    assert scaled.peak_to_mean == pytest.approx(
        stats.peak_to_mean, rel=1e-9, abs=1e-12
    )
