"""Unit tests for report rendering."""

import pytest

from repro.metrics.report import Table, format_figure_header, format_percent


class TestTable:
    def test_needs_columns(self):
        with pytest.raises(ValueError):
            Table([])

    def test_row_width_enforced(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_float_precision(self):
        table = Table(["x"], precision=2)
        table.add_row(1.23456)
        assert "1.23" in table.render()
        assert "1.2345" not in table.render()

    def test_header_and_separator_present(self):
        table = Table(["alpha", "beta"])
        table.add_row(1, 2)
        lines = table.render().splitlines()
        assert "alpha" in lines[0] and "beta" in lines[0]
        assert set(lines[1]) <= {"-", " "}

    def test_title_rendered_first(self):
        table = Table(["x"], title="My Title")
        table.add_row(1)
        assert table.render().splitlines()[0] == "My Title"

    def test_numeric_columns_right_aligned(self):
        table = Table(["n"])
        table.add_row(1)
        table.add_row(1000)
        lines = table.render().splitlines()
        assert lines[-2].endswith("   1")
        assert lines[-1].endswith("1000")

    def test_string_columns_left_aligned(self):
        table = Table(["name", "v"])
        table.add_row("ab", 1)
        table.add_row("abcdef", 2)
        lines = table.render().splitlines()
        assert lines[-2].startswith("ab ")

    def test_str_dunder(self):
        table = Table(["x"])
        table.add_row(5)
        assert str(table) == table.render()


class TestFormatters:
    def test_figure_header(self):
        header = format_figure_header("Figure 3", "load distribution")
        assert "Figure 3" in header and "load distribution" in header

    def test_percent(self):
        assert format_percent(12.345) == "12.3%"
        assert format_percent(12.345, precision=2) == "12.35%"
