"""Unit tests for time series and windowed counters."""

import pytest

from repro.metrics.timeseries import TimeSeries, WindowedCounter


class TestTimeSeries:
    def test_append_and_len(self):
        series = TimeSeries("x")
        series.append(1.0, 10.0)
        series.append(2.0, 20.0)
        assert len(series) == 2
        assert series.items() == [(1.0, 10.0), (2.0, 20.0)]

    def test_rejects_time_regression(self):
        series = TimeSeries()
        series.append(2.0, 1.0)
        with pytest.raises(ValueError):
            series.append(1.0, 1.0)

    def test_equal_timestamps_allowed(self):
        series = TimeSeries()
        series.append(1.0, 1.0)
        series.append(1.0, 2.0)
        assert len(series) == 2

    def test_window_is_half_open(self):
        series = TimeSeries()
        for t in (1.0, 2.0, 3.0):
            series.append(t, t)
        assert series.window(1.0, 3.0) == [(1.0, 1.0), (2.0, 2.0)]

    def test_sum_and_mean_in_window(self):
        series = TimeSeries()
        for t in (1.0, 2.0, 3.0):
            series.append(t, 10.0)
        assert series.sum_in(0.0, 10.0) == 30.0
        assert series.mean_in(0.0, 10.0) == 10.0
        assert series.mean_in(5.0, 6.0) is None

    def test_last(self):
        series = TimeSeries()
        assert series.last() is None
        series.append(1.0, 5.0)
        assert series.last() == (1.0, 5.0)

    def test_values_in_half_open_window(self):
        series = TimeSeries()
        for t in (1.0, 2.0, 3.0):
            series.append(t, t * 10.0)
        assert series.values_in(1.0, 3.0) == [10.0, 20.0]
        assert series.values_in(4.0, 9.0) == []


class TestPercentiles:
    def build(self):
        series = TimeSeries("latency")
        for t, v in enumerate((40.0, 10.0, 30.0, 20.0, 50.0)):
            series.append(float(t), v)
        return series

    def test_percentile_in_nearest_rank(self):
        series = self.build()
        assert series.percentile_in(0.0, 10.0, 0.5) == 30.0
        assert series.percentile_in(0.0, 10.0, 0.0) == 10.0
        assert series.percentile_in(0.0, 10.0, 1.0) == 50.0

    def test_percentile_in_respects_window(self):
        series = self.build()
        # Only t in [1, 4) contributes: values 10, 30, 20.
        assert series.percentile_in(1.0, 4.0, 0.99) == 30.0

    def test_percentile_in_empty_window_is_none(self):
        assert self.build().percentile_in(100.0, 200.0, 0.5) is None

    def test_percentile_in_validates_q(self):
        with pytest.raises(ValueError):
            self.build().percentile_in(0.0, 10.0, 1.5)

    def test_quantiles_default_set(self):
        quantiles = self.build().quantiles()
        assert set(quantiles) == {0.5, 0.9, 0.99}
        assert quantiles[0.5] == 30.0
        assert quantiles[0.99] == 50.0

    def test_quantiles_windowed_and_empty(self):
        series = self.build()
        assert series.quantiles(qs=(0.5,), start=1.0, end=4.0) == {0.5: 20.0}
        assert series.quantiles(start=100.0, end=200.0) == {}

    def test_quantiles_with_only_start(self):
        # start=2.0, no end: t in [2, ...) contributes 30, 20, 50.
        series = self.build()
        assert series.quantiles(qs=(0.5, 1.0), start=2.0) == {
            0.5: 30.0,
            1.0: 50.0,
        }

    def test_quantiles_with_only_end(self):
        # No start, end=2.0: t in [0, 2) contributes 40, 10.
        series = self.build()
        assert series.quantiles(qs=(0.0, 0.5), end=2.0) == {
            0.0: 10.0,
            0.5: 10.0,
        }

    def test_quantiles_one_sided_empty_windows(self):
        series = self.build()
        assert series.quantiles(start=100.0) == {}
        assert series.quantiles(end=0.0) == {}

    def test_percentile_in_open_ended_windows(self):
        """Infinite bounds make percentile_in agree with one-sided quantiles."""
        series = self.build()
        assert series.percentile_in(2.0, float("inf"), 0.5) == 30.0
        assert series.percentile_in(float("-inf"), 2.0, 0.5) == 10.0


class TestWindowedCounter:
    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            WindowedCounter(0.0)

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            WindowedCounter(1.0).record(-1.0)

    def test_bucketing(self):
        counter = WindowedCounter(10.0)
        counter.record(0.5)
        counter.record(9.9)
        counter.record(10.0)
        counter.record(25.0, weight=3.0)
        assert counter.buckets() == [2.0, 1.0, 3.0]

    def test_rate_series(self):
        counter = WindowedCounter(10.0)
        counter.record(5.0, weight=20.0)
        assert counter.rate_series() == [2.0]

    def test_totals_and_mean_rate(self):
        counter = WindowedCounter(10.0)
        counter.record(5.0, weight=10.0)
        counter.record(15.0, weight=30.0)
        assert counter.total() == 40.0
        assert counter.mean_rate() == 2.0  # 40 over 20 time units

    def test_empty_mean_rate(self):
        assert WindowedCounter(1.0).mean_rate() == 0.0
