"""Unit tests for the traffic meter."""

import pytest

from repro.network.bandwidth import TrafficCategory, TrafficMeter


class TestTrafficMeter:
    def test_starts_empty(self):
        meter = TrafficMeter()
        assert meter.total_bytes == 0
        for category in TrafficCategory:
            assert meter.bytes_for(category) == 0

    def test_record_accumulates(self):
        meter = TrafficMeter()
        meter.record(TrafficCategory.PEER_TRANSFER, 100)
        meter.record(TrafficCategory.PEER_TRANSFER, 50)
        assert meter.bytes_for(TrafficCategory.PEER_TRANSFER) == 150
        assert meter.messages_for(TrafficCategory.PEER_TRANSFER) == 2

    def test_rejects_negative_bytes(self):
        with pytest.raises(ValueError):
            TrafficMeter().record(TrafficCategory.CONTROL, -1)

    def test_zero_byte_message_counts_message(self):
        meter = TrafficMeter()
        meter.record(TrafficCategory.CONTROL, 0)
        assert meter.messages_for(TrafficCategory.CONTROL) == 1

    def test_total_bytes_spans_categories(self):
        meter = TrafficMeter()
        meter.record(TrafficCategory.CONTROL, 10)
        meter.record(TrafficCategory.ORIGIN_FETCH, 90)
        assert meter.total_bytes == 100

    def test_total_data_bytes_excludes_control(self):
        meter = TrafficMeter()
        meter.record(TrafficCategory.CONTROL, 10)
        meter.record(TrafficCategory.UPDATE_FANOUT, 90)
        assert meter.total_data_bytes() == 90

    def test_megabytes_per_unit_time(self):
        meter = TrafficMeter()
        meter.record(TrafficCategory.PEER_TRANSFER, 2 * 1024 * 1024)
        assert meter.megabytes_per_unit_time(4.0) == pytest.approx(0.5)

    def test_megabytes_rejects_bad_duration(self):
        with pytest.raises(ValueError):
            TrafficMeter().megabytes_per_unit_time(0.0)

    def test_breakdown_keys(self):
        breakdown = TrafficMeter().breakdown()
        assert set(breakdown) == {c.value for c in TrafficCategory}

    def test_merge(self):
        a, b = TrafficMeter(), TrafficMeter()
        a.record(TrafficCategory.CONTROL, 5)
        b.record(TrafficCategory.CONTROL, 7)
        b.record(TrafficCategory.ORIGIN_FETCH, 11)
        a.merge(b)
        assert a.bytes_for(TrafficCategory.CONTROL) == 12
        assert a.bytes_for(TrafficCategory.ORIGIN_FETCH) == 11

    def test_reset(self):
        meter = TrafficMeter()
        meter.record(TrafficCategory.CONTROL, 5)
        meter.reset()
        assert meter.total_bytes == 0
        assert meter.messages_for(TrafficCategory.CONTROL) == 0
