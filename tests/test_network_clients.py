"""Unit tests for the client population model."""

import random

import pytest

from repro.network.clients import ClientPopulation
from repro.network.topology import EuclideanTopology


def make_topology(num_caches=5, seed=0):
    return EuclideanTopology.random(
        num_caches, random.Random(seed), extent=100.0
    )


class TestConstruction:
    def test_validation(self):
        topo = make_topology()
        with pytest.raises(ValueError):
            ClientPopulation(topo, [], 10)
        with pytest.raises(ValueError):
            ClientPopulation(topo, [0], 0)
        with pytest.raises(ValueError):
            ClientPopulation(topo, [0], 10, hotspot_fraction=1.5)

    def test_population_size(self):
        population = ClientPopulation(make_topology(), list(range(5)), 200)
        assert len(population) == 200

    def test_deterministic_given_rng(self):
        topo = make_topology()
        a = ClientPopulation(topo, list(range(5)), 50, rng=random.Random(1))
        b = ClientPopulation(topo, list(range(5)), 50, rng=random.Random(1))
        assert [c.cache_id for c in a.clients] == [c.cache_id for c in b.clients]


class TestAssignment:
    def test_every_client_maps_to_nearest_cache(self):
        population = ClientPopulation(
            make_topology(), list(range(5)), 100, rng=random.Random(2)
        )
        assert population.assignment_is_nearest()

    def test_clients_per_cache_covers_all_caches(self):
        population = ClientPopulation(make_topology(), list(range(5)), 100)
        counts = population.clients_per_cache()
        assert set(counts) == set(range(5))
        assert sum(counts.values()) == 100

    def test_hotspots_concentrate_demand(self):
        population = ClientPopulation(
            make_topology(),
            list(range(5)),
            500,
            hotspot_fraction=1.0,
            spread=1.0,
            rng=random.Random(3),
        )
        counts = population.clients_per_cache()
        # With pure hot-spotting each client sits on top of some cache.
        assert max(counts.values()) >= 60  # roughly 100 per cache ± noise
        assert population.mean_access_latency_ms() < 10.0

    def test_uniform_population_spreads_demand(self):
        population = ClientPopulation(
            make_topology(),
            list(range(5)),
            500,
            hotspot_fraction=0.0,
            rng=random.Random(4),
        )
        counts = population.clients_per_cache()
        assert min(counts.values()) > 20  # no cache starves


class TestDerivedWeights:
    def test_cache_weights_normalized(self):
        population = ClientPopulation(make_topology(), list(range(5)), 100)
        weights = population.cache_weights()
        assert len(weights) == 5
        assert sum(weights) == pytest.approx(1.0)
        assert all(w > 0 for w in weights)

    def test_weights_feed_workload_config(self):
        from repro.workload.generator import SyntheticTraceGenerator, WorkloadConfig

        population = ClientPopulation(
            make_topology(),
            list(range(5)),
            300,
            hotspot_fraction=1.0,
            spread=1.0,
            rng=random.Random(5),
        )
        weights = population.cache_weights()
        trace = SyntheticTraceGenerator(
            WorkloadConfig(
                num_documents=100,
                num_caches=5,
                request_rate_per_cache=40.0,
                update_rate=0.0,
                duration_minutes=30.0,
                cache_weights=weights,
                seed=5,
            )
        ).build_trace()
        per_cache = [0] * 5
        for record in trace.requests:
            per_cache[record.cache_id] += 1
        total = sum(per_cache)
        for cache_id, weight in enumerate(weights):
            assert per_cache[cache_id] / total == pytest.approx(weight, abs=0.05)


class TestHotspotWeights:
    def test_validation(self):
        topo = make_topology()
        with pytest.raises(ValueError):
            ClientPopulation(topo, list(range(5)), 10, hotspot_weights=[1.0])
        with pytest.raises(ValueError):
            ClientPopulation(
                topo, list(range(5)), 10, hotspot_weights=[0, 0, 0, 0, 0]
            )
        with pytest.raises(ValueError):
            ClientPopulation(
                topo, list(range(5)), 10, hotspot_weights=[1, 1, 1, 1, -1]
            )

    def test_skewed_weights_skew_demand(self):
        topo = make_topology()
        population = ClientPopulation(
            topo,
            list(range(5)),
            1000,
            hotspot_fraction=1.0,
            spread=1.0,
            hotspot_weights=[10.0, 1.0, 1.0, 1.0, 1.0],
            rng=random.Random(6),
        )
        counts = population.clients_per_cache()
        assert counts[0] > 3 * max(counts[c] for c in range(1, 5))

    def test_uniform_weights_match_default(self):
        topo = make_topology()
        weighted = ClientPopulation(
            topo,
            list(range(5)),
            200,
            hotspot_weights=[1.0] * 5,
            rng=random.Random(7),
        )
        counts = weighted.clients_per_cache()
        assert sum(counts.values()) == 200
