"""Unit tests for landmark-based cloud construction."""

import random

import pytest

from repro.network.landmarks import LandmarkClustering, form_cache_clouds
from repro.network.topology import EuclideanTopology


def clustered_topology(num_caches=12, num_clusters=3, seed=0):
    """Caches in tight metro clusters + 4 landmark nodes far apart."""
    topo = EuclideanTopology.random(
        num_caches,
        random.Random(seed),
        extent=1000.0,
        num_clusters=num_clusters,
        cluster_spread=2.0,
    )
    landmarks = []
    for i, pos in enumerate([(0, 0), (1000, 0), (0, 1000), (1000, 1000)]):
        node = 1000 + i
        topo.add_node(node, pos)
        landmarks.append(node)
    return topo, landmarks


class TestLandmarkClustering:
    def test_requires_landmarks(self):
        topo, _ = clustered_topology()
        with pytest.raises(ValueError):
            LandmarkClustering(topo, [])

    def test_rtt_vector_dimension(self):
        topo, landmarks = clustered_topology()
        clustering = LandmarkClustering(topo, landmarks)
        assert len(clustering.rtt_vector(0)) == 4

    def test_vector_distance_requires_equal_length(self):
        with pytest.raises(ValueError):
            LandmarkClustering.vector_distance([1.0], [1.0, 2.0])

    def test_vector_distance_is_euclidean(self):
        assert LandmarkClustering.vector_distance([0, 0], [3, 4]) == 5.0

    def test_cluster_rejects_too_many_clouds(self):
        topo, landmarks = clustered_topology()
        clustering = LandmarkClustering(topo, landmarks)
        with pytest.raises(ValueError):
            clustering.cluster(list(range(3)), 5)

    def test_cluster_rejects_zero_clouds(self):
        topo, landmarks = clustered_topology()
        clustering = LandmarkClustering(topo, landmarks)
        with pytest.raises(ValueError):
            clustering.cluster(list(range(3)), 0)

    def test_recovers_planted_clusters(self):
        topo, landmarks = clustered_topology(num_caches=12, num_clusters=3)
        clouds = form_cache_clouds(
            topo, list(range(12)), landmarks, 3, rng=random.Random(1)
        )
        assert len(clouds) == 3
        # Planted structure: cache i belongs to metro (i % 3).
        for cloud in clouds:
            metros = {node % 3 for node in cloud}
            assert len(metros) == 1

    def test_partition_is_complete_and_disjoint(self):
        topo, landmarks = clustered_topology()
        clouds = form_cache_clouds(
            topo, list(range(12)), landmarks, 3, rng=random.Random(2)
        )
        seen = [node for cloud in clouds for node in cloud]
        assert sorted(seen) == list(range(12))

    def test_deterministic_given_rng(self):
        topo, landmarks = clustered_topology()
        a = form_cache_clouds(topo, list(range(12)), landmarks, 3, random.Random(5))
        b = form_cache_clouds(topo, list(range(12)), landmarks, 3, random.Random(5))
        assert a == b

    def test_clustered_caches_have_similar_rtt_vectors(self):
        topo, landmarks = clustered_topology()
        clustering = LandmarkClustering(topo, landmarks)
        same_metro = clustering.vector_distance(
            clustering.rtt_vector(0), clustering.rtt_vector(3)
        )
        cross_metro = clustering.vector_distance(
            clustering.rtt_vector(0), clustering.rtt_vector(1)
        )
        assert same_metro < cross_metro
