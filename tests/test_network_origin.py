"""Unit tests for the origin server."""

import pytest

from repro.network.origin import ORIGIN_NODE_ID, OriginServer
from repro.workload.documents import build_corpus


@pytest.fixture
def origin():
    return OriginServer(build_corpus(10, fixed_size=2048))


class TestVersions:
    def test_initial_version_zero(self, origin):
        assert origin.version_of(3) == 0

    def test_publish_increments(self, origin):
        assert origin.publish_update(3) == 1
        assert origin.publish_update(3) == 2
        assert origin.version_of(3) == 2

    def test_versions_independent_per_document(self, origin):
        origin.publish_update(1)
        assert origin.version_of(2) == 0

    def test_unknown_doc_raises(self, origin):
        with pytest.raises(KeyError):
            origin.version_of(99)
        with pytest.raises(KeyError):
            origin.publish_update(-1)


class TestServing:
    def test_serve_fetch_returns_size_and_counts(self, origin):
        size = origin.serve_fetch(0)
        assert size == 2048
        assert origin.fetches_served == 1
        assert origin.bytes_served == 2048

    def test_note_update_message(self, origin):
        origin.note_update_message(0)
        assert origin.update_messages_sent == 1

    def test_document_metadata(self, origin):
        assert origin.document_size(5) == 2048
        assert "5" in origin.document_url(5)

    def test_default_node_id(self, origin):
        assert origin.node_id == ORIGIN_NODE_ID

    def test_updates_published_counter(self, origin):
        origin.publish_update(0)
        origin.publish_update(1)
        assert origin.updates_published == 2
