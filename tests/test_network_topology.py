"""Unit tests for topology models."""

import random

import pytest

from repro.network.topology import (
    EuclideanTopology,
    ExplicitTopology,
    ms_to_minutes,
)


class TestMsToMinutes:
    def test_conversion(self):
        assert ms_to_minutes(60_000.0) == 1.0
        assert ms_to_minutes(30.0) == pytest.approx(0.0005)


class TestEuclideanTopology:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            EuclideanTopology({})

    def test_rejects_negative_latency_params(self):
        with pytest.raises(ValueError):
            EuclideanTopology({0: (0, 0)}, base_latency_ms=-1)

    def test_self_latency_zero(self):
        topo = EuclideanTopology({0: (0, 0), 1: (3, 4)})
        assert topo.latency_ms(0, 0) == 0.0

    def test_latency_is_base_plus_distance(self):
        topo = EuclideanTopology(
            {0: (0, 0), 1: (3, 4)}, base_latency_ms=2.0, ms_per_unit=1.0
        )
        assert topo.latency_ms(0, 1) == pytest.approx(7.0)  # 2 + 5

    def test_latency_symmetric(self):
        topo = EuclideanTopology.random(10, random.Random(0))
        assert topo.latency_ms(2, 7) == topo.latency_ms(7, 2)

    def test_rtt_doubles_latency(self):
        topo = EuclideanTopology({0: (0, 0), 1: (3, 4)})
        assert topo.rtt_ms(0, 1) == 2 * topo.latency_ms(0, 1)

    def test_random_places_requested_nodes(self):
        topo = EuclideanTopology.random(25, random.Random(1))
        assert topo.nodes() == list(range(25))

    def test_random_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            EuclideanTopology.random(0)

    def test_clustered_placement_creates_proximity_structure(self):
        topo = EuclideanTopology.random(
            30, random.Random(2), num_clusters=3, cluster_spread=1.0, extent=1000.0
        )
        # Nodes in the same cluster (same index mod 3) are much closer than
        # nodes in different clusters, on average.
        same = topo.latency_ms(0, 3)  # cluster 0
        assert same < 50.0

    def test_add_node(self):
        topo = EuclideanTopology({0: (0, 0)})
        topo.add_node(-1, (1, 1))
        assert -1 in topo.nodes()

    def test_add_duplicate_node_raises(self):
        topo = EuclideanTopology({0: (0, 0)})
        with pytest.raises(ValueError):
            topo.add_node(0, (1, 1))


class TestExplicitTopology:
    def test_valid_matrix(self):
        topo = ExplicitTopology([[0, 5], [5, 0]])
        assert topo.latency_ms(0, 1) == 5

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ExplicitTopology([])

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            ExplicitTopology([[0, 1]])

    def test_rejects_nonzero_diagonal(self):
        with pytest.raises(ValueError):
            ExplicitTopology([[1, 2], [2, 0]])

    def test_rejects_asymmetric(self):
        with pytest.raises(ValueError):
            ExplicitTopology([[0, 1], [2, 0]])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ExplicitTopology([[0, -1], [-1, 0]])

    def test_nodes(self):
        topo = ExplicitTopology([[0, 1, 2], [1, 0, 3], [2, 3, 0]])
        assert topo.nodes() == [0, 1, 2]
