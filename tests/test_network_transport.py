"""Unit tests for the transport layer."""

import pytest

from repro.network.bandwidth import TrafficCategory, TrafficMeter
from repro.network.topology import ExplicitTopology
from repro.network.transport import (
    CONTROL_MESSAGE_BYTES,
    TRANSFER_HEADER_BYTES,
    Transport,
)
from repro.simulation.engine import Simulator


class TestLatencyModel:
    def test_no_topology_means_zero_latency(self):
        transport = Transport()
        assert transport.latency_minutes(0, 1) == 0.0

    def test_self_send_zero_latency(self):
        topo = ExplicitTopology([[0, 60_000], [60_000, 0]])
        transport = Transport(topology=topo)
        assert transport.latency_minutes(1, 1) == 0.0

    def test_latency_converted_to_minutes(self):
        topo = ExplicitTopology([[0, 60_000], [60_000, 0]])
        transport = Transport(topology=topo)
        assert transport.latency_minutes(0, 1) == 1.0
        assert transport.rtt_minutes(0, 1) == 2.0


class TestAccounting:
    def test_send_charges_meter(self):
        meter = TrafficMeter()
        transport = Transport(meter=meter)
        transport.send(0, 1, 500, TrafficCategory.PEER_TRANSFER)
        assert meter.bytes_for(TrafficCategory.PEER_TRANSFER) == 500

    def test_send_control_size(self):
        meter = TrafficMeter()
        Transport(meter=meter).send_control(0, 1)
        assert meter.bytes_for(TrafficCategory.CONTROL) == CONTROL_MESSAGE_BYTES

    def test_send_document_adds_header(self):
        meter = TrafficMeter()
        Transport(meter=meter).send_document(
            0, 1, 1000, TrafficCategory.ORIGIN_FETCH
        )
        assert (
            meter.bytes_for(TrafficCategory.ORIGIN_FETCH)
            == 1000 + TRANSFER_HEADER_BYTES
        )

    def test_send_document_rejects_empty_body(self):
        with pytest.raises(ValueError):
            Transport().send_document(0, 1, 0, TrafficCategory.ORIGIN_FETCH)

    def test_default_meter_created(self):
        transport = Transport()
        transport.send(0, 1, 5, TrafficCategory.CONTROL)
        assert transport.meter.total_bytes == 5


class TestScheduledDelivery:
    def test_requires_simulator(self):
        with pytest.raises(RuntimeError):
            Transport().send_scheduled(
                0, 1, 10, TrafficCategory.CONTROL, lambda: None
            )

    def test_delivery_after_latency(self):
        topo = ExplicitTopology([[0, 120_000], [120_000, 0]])  # 2 minutes
        sim = Simulator()
        transport = Transport(topology=topo, simulator=sim)
        delivered = []
        transport.send_scheduled(
            0, 1, 10, TrafficCategory.CONTROL, lambda: delivered.append(sim.now)
        )
        sim.run_until(10.0)
        assert delivered == [2.0]
