"""Unit tests for the observability layer: spans, histograms, registry, export."""

import json

import pytest

from repro.core.cloud import CacheCloud
from repro.core.config import CloudConfig, PlacementScheme
from repro.core.node import MINUTES_TO_MS
from repro.experiments.runner import run_experiment
from repro.observe import (
    LogHistogram,
    SpanRecorder,
    Telemetry,
    dump_json,
    find_tree,
    render_span_tree,
    render_summary,
    span_trees,
    telemetry_to_jsonable,
    write_json,
)
from repro.workload.documents import build_corpus
from repro.workload.generator import SyntheticTraceGenerator, WorkloadConfig


class TestSpanRecorder:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            SpanRecorder(max_spans=0)

    def test_begin_end_pairing_and_ids(self):
        recorder = SpanRecorder()
        root = recorder.begin("request", 1.0, cache=3)
        child = recorder.begin("beacon_lookup", 1.0)
        recorder.end(child, 1.5, ok=True)
        recorder.end(root, 2.0, outcome="cloud_hit")
        assert root.span_id == 0 and root.parent_id is None
        assert child.span_id == 1 and child.parent_id == 0
        assert root.attrs == {"cache": 3, "outcome": "cloud_hit"}
        assert child.attrs == {"ok": True}
        assert recorder.depth == 0
        assert recorder.begun == 2

    def test_end_out_of_order_raises(self):
        recorder = SpanRecorder()
        root = recorder.begin("request", 0.0)
        recorder.begin("child", 0.0)
        with pytest.raises(RuntimeError, match="out of order"):
            recorder.end(root, 1.0)

    def test_end_without_open_span_raises(self):
        recorder = SpanRecorder()
        span = recorder.begin("x", 0.0)
        recorder.end(span, 1.0)
        with pytest.raises(RuntimeError):
            recorder.end(span, 2.0)

    def test_parent_end_widened_to_cover_children(self):
        recorder = SpanRecorder()
        root = recorder.begin("request", 0.0)
        leg = recorder.begin("fanout_leg", 0.0)
        recorder.end(leg, 7.5)
        # The closer only knows its own instant, but the child ran longer.
        recorder.end(root, 1.0)
        assert root.end == 7.5

    def test_widening_propagates_through_middle_spans(self):
        recorder = SpanRecorder()
        root = recorder.begin("update", 0.0)
        middle = recorder.begin("server_to_beacon", 0.0)
        leaf = recorder.begin("fanout_leg", 2.0)
        recorder.end(leaf, 9.0)
        recorder.end(middle, 3.0)
        recorder.end(root, 0.0)
        assert middle.end == 9.0
        assert root.end == 9.0

    def test_duration_zero_while_open(self):
        recorder = SpanRecorder()
        span = recorder.begin("x", 1.0)
        assert span.duration == 0.0
        recorder.end(span, 4.0)
        assert span.duration == 3.0

    def test_unwind_marks_aborted(self):
        recorder = SpanRecorder()
        root = recorder.begin("request", 0.0)
        recorder.begin("beacon_lookup", 0.0)
        recorder.begin("peer_fetch", 0.5)
        recorder.unwind(root, 2.0)
        assert recorder.depth == 0
        assert all(span.attrs.get("aborted") is True for span in recorder.spans)
        assert all(span.end == 2.0 for span in recorder.spans)

    def test_unwind_of_unknown_span_raises(self):
        recorder = SpanRecorder()
        a = recorder.begin("a", 0.0)
        recorder.end(a, 1.0)
        with pytest.raises(RuntimeError):
            recorder.unwind(a, 2.0)

    def test_max_spans_drops_monotonically(self):
        recorder = SpanRecorder(max_spans=2)
        for i in range(5):
            span = recorder.begin(f"s{i}", float(i))
            recorder.end(span, float(i) + 0.5)
        assert [s.name for s in recorder.spans] == ["s0", "s1"]
        assert recorder.dropped == 3
        assert recorder.begun == 5

    def test_dropped_spans_keep_parentage_consistent(self):
        # Dropped spans still push/pop the stack, so ids never skew.
        recorder = SpanRecorder(max_spans=1)
        root = recorder.begin("root", 0.0)
        child = recorder.begin("child", 0.0)
        recorder.end(child, 1.0)
        recorder.end(root, 2.0)
        assert child.parent_id == root.span_id
        assert recorder.spans == [root]

    def test_clear_resets_everything(self):
        recorder = SpanRecorder(max_spans=1)
        recorder.begin("a", 0.0)
        recorder.begin("b", 0.0)
        recorder.clear()
        assert recorder.spans == [] and recorder.depth == 0
        assert recorder.dropped == 0
        fresh = recorder.begin("c", 1.0)
        assert fresh.parent_id is None  # stack really was reset


class TestLogHistogram:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            LogHistogram(lower=0.0)
        with pytest.raises(ValueError):
            LogHistogram(lower=10.0, upper=1.0)
        with pytest.raises(ValueError):
            LogHistogram(buckets_per_decade=0)

    def test_bounds_are_data_independent(self):
        # Two histograms fed different data keep identical bucket edges.
        a, b = LogHistogram(), LogHistogram()
        a.record(0.004)
        b.record(123456.0)
        assert a.bounds == b.bounds

    def test_underflow_bucket_catches_zero_and_negatives(self):
        hist = LogHistogram(lower=1.0, upper=100.0, buckets_per_decade=1)
        hist.record(0.0)
        hist.record(-5.0)  # clamps to zero
        hist.record(0.5)
        assert hist.counts[0] == 3
        assert hist.min == 0.0
        assert hist.percentile(0.5) == 0.0

    def test_overflow_bucket(self):
        hist = LogHistogram(lower=1.0, upper=100.0, buckets_per_decade=1)
        hist.record(1e9)
        assert hist.counts[-1] == 1
        assert hist.percentile(0.99) == 1e9  # representative is observed max

    def test_percentiles_nearest_rank(self):
        hist = LogHistogram(lower=1.0, upper=1000.0, buckets_per_decade=1)
        for value in (2.0, 3.0, 40.0, 50.0, 600.0):
            hist.record(value)
        # Ranks 1-2 land in (1, 10], rank 3-4 in (10, 100], rank 5 in (100, 1000].
        assert hist.percentile(0.0) == 10.0  # rank 1 -> first bucket's edge
        assert hist.percentile(0.40) == 10.0
        assert hist.percentile(0.80) == 100.0
        assert hist.percentile(1.0) == 600.0  # clamped down to observed max

    def test_values_exactly_on_bucket_edges(self):
        """Edges are inclusive upper bounds: a value equal to an edge lands
        in the bucket that edge closes, never the one above it."""
        hist = LogHistogram(lower=1.0, upper=1000.0, buckets_per_decade=1)
        # bounds == [0.0, 1.0, 10.0, 100.0, 1000.0]
        for value in (1.0, 10.0, 100.0, 1000.0):
            hist.record(value)
        assert hist.counts == [0, 1, 1, 1, 1, 0]
        # Each edge value is its bucket's representative, so nearest-rank
        # percentiles on edge data are exact.
        assert hist.percentile(0.25) == 1.0
        assert hist.percentile(0.5) == 10.0
        assert hist.percentile(1.0) == 1000.0

    def test_lower_edge_is_not_underflow(self):
        # Exactly ``lower`` belongs to the first real bucket; underflow is
        # the half-open [0, lower) only.
        hist = LogHistogram(lower=1.0, upper=100.0, buckets_per_decade=1)
        hist.record(1.0)
        assert hist.counts[0] == 0
        assert hist.counts[1] == 1
        assert hist.percentile(0.5) == 1.0

    def test_last_edge_is_not_overflow(self):
        hist = LogHistogram(lower=1.0, upper=100.0, buckets_per_decade=1)
        # bounds == [0.0, 1.0, 10.0, 100.0]: 100.0 closes the last real
        # bucket; only values strictly above it overflow.
        hist.record(100.0)
        hist.record(100.0000001)
        assert hist.counts[-2] == 1
        assert hist.counts[-1] == 1

    def test_percentile_validates_q(self):
        hist = LogHistogram()
        hist.record(1.0)
        with pytest.raises(ValueError):
            hist.percentile(1.5)

    def test_empty_histogram(self):
        hist = LogHistogram()
        assert hist.percentile(0.5) is None
        assert hist.mean is None
        summary = hist.to_dict()
        assert summary["count"] == 0
        assert summary["p99"] is None
        assert summary["buckets"] == []

    def test_to_dict_sparse_buckets(self):
        hist = LogHistogram(lower=1.0, upper=100.0, buckets_per_decade=1)
        hist.record(5.0)
        hist.record(5.0)
        hist.record(1e9)
        summary = hist.to_dict()
        assert summary["count"] == 3
        assert summary["sum"] == pytest.approx(1_000_000_010.0)
        assert [10.0, 2] in summary["buckets"]
        assert [None, 1] in summary["buckets"]  # overflow edge has no bound
        assert len(summary["buckets"]) == 2
        json.dumps(summary)  # everything is JSON-serializable


class TestTelemetry:
    def test_count_and_gauge(self):
        tel = Telemetry()
        tel.count("requests.cloud_hit")
        tel.count("requests.cloud_hit", 2)
        tel.gauge("docs", 41.0)
        tel.gauge("docs", 42.0)
        assert tel.counters["requests.cloud_hit"] == 3
        assert tel.gauges["docs"] == 42.0

    def test_histogram_is_created_once(self):
        tel = Telemetry()
        assert tel.histogram("latency_ms.control") is tel.histogram("latency_ms.control")

    def test_record_attempt_delivered(self):
        tel = Telemetry()
        tel.record_attempt("peer_transfer", 2048, 0.001)
        assert tel.counters["fabric.attempts.peer_transfer"] == 1
        assert "fabric.lost.peer_transfer" not in tel.counters
        assert tel.histograms["bytes.peer_transfer"].count == 1
        latency = tel.histograms["latency_ms.peer_transfer"]
        assert latency.count == 1
        assert latency.max == pytest.approx(0.001 * MINUTES_TO_MS)

    def test_record_attempt_lost(self):
        tel = Telemetry()
        tel.record_attempt("origin_fetch", 512, None)
        assert tel.counters["fabric.attempts.origin_fetch"] == 1
        assert tel.counters["fabric.lost.origin_fetch"] == 1
        assert tel.histograms["bytes.origin_fetch"].count == 1
        assert "latency_ms.origin_fetch" not in tel.histograms

    def test_observe_request_feeds_series_and_histogram(self):
        tel = Telemetry()
        tel.observe_request(5.0, 12.5)
        tel.observe_request(6.0, 2.5)
        assert len(tel.request_latencies) == 2
        assert tel.histograms["latency_ms.request"].count == 2


class TestExport:
    def build_telemetry(self):
        tel = Telemetry()
        root = tel.begin_span("request", 0.0, cache=1, doc=7)
        lookup = tel.begin_span("beacon_lookup", 0.0, beacon=2)
        tel.end_span(lookup, 0.2, ok=True)
        fetch = tel.begin_span("peer_fetch", 0.2, holder=3)
        tel.end_span(fetch, 0.6, ok=True)
        placement = tel.begin_span("placement", 0.6)
        tel.end_span(placement, 0.6, stored=True)
        tel.end_span(root, 0.6, outcome="cloud_hit")
        tel.count("requests.cloud_hit")
        tel.record_attempt("peer_transfer", 1024, 0.0001)
        return tel

    def test_span_trees_nesting(self):
        tel = self.build_telemetry()
        trees = span_trees(tel.spans.spans)
        assert len(trees) == 1
        root = trees[0]
        assert root["name"] == "request"
        assert [child["name"] for child in root["children"]] == [
            "beacon_lookup",
            "peer_fetch",
            "placement",
        ]

    def test_span_trees_tolerates_orphans(self):
        recorder = SpanRecorder()
        orphan = recorder.begin("lonely", 1.0)
        recorder.end(orphan, 2.0)
        orphan.parent_id = 999  # parent never retained
        trees = span_trees(recorder.spans)
        assert [tree["name"] for tree in trees] == ["lonely"]

    def test_find_tree(self):
        tel = self.build_telemetry()
        trees = span_trees(tel.spans.spans)
        hit = find_tree(trees, {"request", "beacon_lookup", "peer_fetch", "placement"})
        assert hit is trees[0]
        assert find_tree(trees, {"request", "origin_fetch"}) is None

    def test_render_span_tree(self):
        tel = self.build_telemetry()
        text = render_span_tree(span_trees(tel.spans.spans)[0])
        assert "request" in text and "  beacon_lookup" in text
        assert "outcome=cloud_hit" in text
        assert "holder=3" in text

    def test_render_summary(self):
        text = render_summary(self.build_telemetry())
        assert "requests.cloud_hit: 1" in text
        assert "latency_ms.peer_transfer" in text
        assert "recorded=4" in text

    def test_jsonable_snapshot_shape(self):
        snapshot = telemetry_to_jsonable(self.build_telemetry())
        assert snapshot["schema_version"] == Telemetry.SCHEMA_VERSION
        assert snapshot["counters"]["fabric.attempts.peer_transfer"] == 1
        assert snapshot["spans"]["recorded"] == 4
        assert snapshot["spans"]["dropped"] == 0

    def test_dump_json_is_stable(self):
        assert dump_json(self.build_telemetry()) == dump_json(self.build_telemetry())

    def test_write_json_round_trips(self, tmp_path):
        path = tmp_path / "telemetry.json"
        write_json(self.build_telemetry(), str(path))
        data = json.loads(path.read_text())
        assert data["schema_version"] == Telemetry.SCHEMA_VERSION


class TestExperimentIntegration:
    def run_traced(self):
        corpus = build_corpus(60, fixed_size=2048)
        generator = SyntheticTraceGenerator(
            WorkloadConfig(
                num_documents=60,
                num_caches=4,
                request_rate_per_cache=30.0,
                update_rate=10.0,
                duration_minutes=8.0,
                seed=11,
            )
        )
        config = CloudConfig(
            num_caches=4,
            num_rings=2,
            intra_gen=100,
            cycle_length=4.0,
            placement=PlacementScheme.AD_HOC,
            seed=11,
        )
        telemetry = Telemetry()
        result = run_experiment(
            config,
            corpus,
            generator.requests(),
            generator.updates(),
            duration=8.0,
            telemetry=telemetry,
        )
        return result, telemetry

    def test_same_seed_runs_are_bit_identical(self):
        _, first = self.run_traced()
        _, second = self.run_traced()
        assert dump_json(first) == dump_json(second)

    def test_traced_run_covers_the_protocol(self):
        result, telemetry = self.run_traced()
        assert result.requests > 0
        # Every handled request opened a root span and bumped a counter.
        requests_counted = sum(
            count
            for name, count in telemetry.counters.items()
            if name.startswith("requests.")
        )
        assert requests_counted == result.requests
        assert telemetry.counters["updates.handled"] == result.updates
        assert telemetry.spans.depth == 0  # every span was closed
        # A collaborative miss reconstructs as the canonical tree.
        trees = span_trees(telemetry.spans.spans)
        collaborative = find_tree(
            trees, {"request", "beacon_lookup", "peer_fetch", "placement"}
        )
        assert collaborative is not None
        assert telemetry.histograms["latency_ms.request"].count == result.requests

    def test_spans_nest_inside_their_roots(self):
        _, telemetry = self.run_traced()
        for tree in span_trees(telemetry.spans.spans):
            assert tree["name"] in {"request", "update"}
            start, end = tree["start"], tree["end"]
            assert end is not None and end >= start
            for child in tree["children"]:
                assert child["start"] >= start
                assert child["end"] is not None and child["end"] <= end
