"""Flight recorder + cost attribution (PR 10).

Four contracts under test:

1. **Off-path** — attaching a :class:`FlightRecorder` (or a bare
   :class:`WorkProfile`) must not perturb the protocols: identical
   dispatch log, meter/ledger totals, and zero injector RNG draws,
   mirroring the telemetry structural-equivalence suite.
2. **Windowed streaming export** — fixed-width sim-time windows appended
   as canonical JSON lines: contiguous indices, explicit zero windows
   over idle gaps, byte-identical artifacts for same-seed runs (serial
   vs worker pool, streaming vs materialized traces), and torn-tail
   recovery for the fsync'd appending writer.
3. **Cost attribution** — per-phase work counters and the
   ``holder_walk_length`` histogram populate deterministically, and the
   monitor exposes windowed profile series when a profile is attached.
4. **Dashboard** — render/diff: the report carries its sections, a
   self-diff passes, and a perturbed artifact fails the diff.
"""

from __future__ import annotations

import json
import tracemalloc

import pytest

from repro.core.config import AssignmentScheme, CloudConfig, PlacementScheme
from repro.experiments.parallel import (
    ExperimentSpec,
    WorkloadSpec,
    run_spec,
    run_sweep,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import NO_FAULTS
from repro.observe.flight import (
    FLIGHT_SCHEMA_VERSION,
    FlightRecorder,
    FlightSpec,
    FlightWriter,
    diff_flights,
    read_flight,
    render_flight_html,
    render_flight_report,
    sparkline,
)
from repro.observe.profile import PHASE_ROLES, PHASES, WorkProfile
from repro.workload.generator import WorkloadConfig
from tests.conftest import make_cloud


def _drive(cloud, steps=60):
    """A deterministic request/update mix exercising every protocol."""
    results = []
    for i in range(steps):
        cache_id = i % len(cloud.caches)
        doc_id = (7 * i) % len(cloud.corpus)
        result = cloud.handle_request(cache_id, doc_id, now=float(i))
        results.append((result.outcome, result.latency_ms, result.served_by))
        if i % 5 == 4:
            cloud.handle_update((3 * i) % len(cloud.corpus), now=float(i))
        if i % 20 == 19:
            cloud.run_cycle(now=float(i))
    return results


# ----------------------------------------------------------------------
# WorkProfile
# ----------------------------------------------------------------------
class TestWorkProfile:
    def test_phase_tables_agree(self):
        assert set(PHASES) == set(PHASE_ROLES)

    def test_charge_accumulates_counts_and_units(self):
        profile = WorkProfile()
        profile.charge("beacon_lookup")
        profile.charge("beacon_lookup", 3)
        assert profile.counts["beacon_lookup"] == 2
        assert profile.units["beacon_lookup"] == 4
        assert profile.counts["peer_fetch"] == 0

    def test_record_walk_feeds_histogram_and_window_table(self):
        profile = WorkProfile()
        profile.record_walk(doc_id=9, walked=4)
        profile.record_walk(doc_id=9, walked=2)  # shorter: table keeps 4
        profile.record_walk(doc_id=3, walked=7)
        assert profile.counts["holder_verify"] == 3
        assert profile.units["holder_verify"] == 13
        assert profile.walk_hist.count == 3
        max_walk, top = profile.drain_window(top_k=5)
        assert max_walk == 7
        assert top == [(3, 7), (9, 4)]

    def test_drain_window_orders_resets_and_keeps_cumulative(self):
        profile = WorkProfile()
        # Equal walks break ties toward the lower doc id (deterministic).
        profile.record_walk(doc_id=8, walked=5)
        profile.record_walk(doc_id=2, walked=5)
        profile.record_walk(doc_id=5, walked=1)
        max_walk, top = profile.drain_window(top_k=2)
        assert max_walk == 5
        assert top == [(2, 5), (8, 5)]
        # The windowed view drains; the cumulative counters do not.
        assert profile.drain_window(top_k=2) == (0, [])
        assert profile.units["holder_verify"] == 11
        assert profile.walk_hist.count == 3

    def test_to_dict_reports_active_phases_only(self):
        profile = WorkProfile()
        profile.charge("placement", 4)
        payload = profile.to_dict()
        assert payload["phases"] == {"placement": [1, 4]}
        assert payload["holder_walk_length"]["count"] == 0

    def test_snapshot_is_detached(self):
        profile = WorkProfile()
        counts, units = profile.snapshot()
        profile.charge("peer_fetch", 2)
        assert counts["peer_fetch"] == 0
        assert units["peer_fetch"] == 0


# ----------------------------------------------------------------------
# The appending writer: durability and torn-tail recovery
# ----------------------------------------------------------------------
class TestFlightWriter:
    def test_lines_are_canonical_json(self, tmp_path):
        path = str(tmp_path / "w.jsonl")
        writer = FlightWriter(path)
        writer.append({"b": 2, "a": 1})
        writer.append({"type": "x"})
        writer.close()
        raw = open(path, "rb").read()
        assert raw == b'{"a":1,"b":2}\n{"type":"x"}\n'

    def test_resume_truncates_torn_tail(self, tmp_path):
        path = str(tmp_path / "torn.jsonl")
        writer = FlightWriter(path)
        writer.append({"type": "header"})
        writer.append({"index": 0, "type": "window"})
        writer.close()
        with open(path, "ab") as fh:
            fh.write(b'{"index":1,"ty')  # crash mid-write: no newline
        resumed = FlightWriter(path, resume=True)
        assert resumed.recovered_lines == 2
        resumed.append({"index": 1, "type": "window"})
        resumed.close()
        lines = open(path, "rb").read().splitlines()
        assert len(lines) == 3
        assert json.loads(lines[-1]) == {"index": 1, "type": "window"}

    def test_read_flight_tolerates_torn_tail_only(self, tmp_path):
        path = str(tmp_path / "tail.jsonl")
        writer = FlightWriter(path)
        writer.append({"type": "header", "window": 1.0})
        writer.close()
        with open(path, "ab") as fh:
            fh.write(b'{"type":"win')
        log = read_flight(path)
        assert log.torn_tail
        assert log.header is not None
        # A *complete* unparsable line is corruption, not a tear.
        with open(path, "wb") as fh:
            fh.write(b"not json\n")
        with pytest.raises(ValueError, match="corrupt"):
            read_flight(path)


# ----------------------------------------------------------------------
# Off-path structural equivalence (the telemetry contract, extended)
# ----------------------------------------------------------------------
class TestFlightOffPathEquivalence:
    """An attached recorder/profile observes without perturbing.

    Same bar as ``TestTelemetryOffPathEquivalence``: the very same wire
    messages in the very same order, identical meter/ledger totals, and
    not one extra RNG draw.
    """

    def test_dispatch_log_and_outcomes_identical(self, small_corpus, tmp_path):
        bare = make_cloud(small_corpus)
        observed = make_cloud(small_corpus)
        observed.attach_flight(FlightRecorder(str(tmp_path / "f.jsonl")))
        bare_log = bare.fabric.capture_dispatches()
        observed_log = observed.fabric.capture_dispatches()

        assert _drive(bare) == _drive(observed)

        assert len(bare_log) > 0
        assert bare_log == observed_log

    def test_profile_alone_is_off_path(self, small_corpus):
        bare = make_cloud(small_corpus)
        profiled = make_cloud(small_corpus)
        profiled.attach_profile(WorkProfile())
        bare_log = bare.fabric.capture_dispatches()
        profiled_log = profiled.fabric.capture_dispatches()

        assert _drive(bare) == _drive(profiled)

        assert bare_log == profiled_log
        assert profiled.profile.counts["holder_verify"] > 0

    def test_meter_and_ledger_totals_identical(self, small_corpus, tmp_path):
        bare = make_cloud(small_corpus)
        observed = make_cloud(small_corpus)
        observed.attach_flight(FlightRecorder(str(tmp_path / "f.jsonl")))
        _drive(bare)
        _drive(observed)

        assert bare.transport.meter == observed.transport.meter
        assert (
            bare.transport.messages_attempted
            == observed.transport.messages_attempted
        )
        assert (
            bare.transport.bytes_attempted == observed.transport.bytes_attempted
        )
        assert bare.fabric.stats == observed.fabric.stats

    def test_recorder_makes_no_random_draws(self, small_corpus, tmp_path):
        cloud = make_cloud(small_corpus)
        injector = FaultInjector(NO_FAULTS, cloud.transport, seed=99)
        cloud.attach_faults(injector)
        cloud.attach_flight(FlightRecorder(str(tmp_path / "f.jsonl")))
        before = injector._rng.getstate()
        _drive(cloud)
        assert injector._rng.getstate() == before

    def test_detach_restores_fast_path_and_stops_recording(
        self, small_corpus, tmp_path
    ):
        cloud = make_cloud(small_corpus)
        assert cloud.fabric._fast_path
        recorder = FlightRecorder(str(tmp_path / "f.jsonl"))
        cloud.attach_flight(recorder)
        assert not cloud.fabric._fast_path
        assert cloud.profile is recorder.profile
        cloud.handle_request(0, 5, now=0.5)
        cloud.detach_flight()
        assert cloud.flight is None
        assert cloud.fabric.flight is None
        assert cloud.profile is None
        assert cloud.fabric._fast_path
        counts = dict(recorder.profile.counts)
        cloud.handle_request(1, 5, now=1.5)
        assert dict(recorder.profile.counts) == counts


# ----------------------------------------------------------------------
# Windowed recording
# ----------------------------------------------------------------------
class TestFlightRecording:
    def test_windows_roll_on_fixed_grid(self, small_corpus, tmp_path):
        path = str(tmp_path / "grid.jsonl")
        cloud = make_cloud(small_corpus)
        recorder = cloud.attach_flight(FlightRecorder(path, window=2.0))
        _drive(cloud)
        recorder.finish(60.0)
        log = read_flight(path)
        assert log.header["schema"] == FLIGHT_SCHEMA_VERSION
        assert log.header["roles"] == PHASE_ROLES
        assert [w["index"] for w in log.windows] == list(range(30))
        for window in log.windows:
            assert window["start"] == pytest.approx(2.0 * window["index"])
            assert window["end"] == pytest.approx(2.0 * (window["index"] + 1))
        assert sum(w["requests"] for w in log.windows) == 60
        assert log.summary["windows"] == 30
        assert log.summary["profile"]["holder_walk_length"]["count"] > 0

    def test_idle_gaps_emit_zero_windows(self, small_corpus, tmp_path):
        path = str(tmp_path / "idle.jsonl")
        cloud = make_cloud(small_corpus)
        recorder = cloud.attach_flight(FlightRecorder(path, window=1.0))
        cloud.handle_request(0, 1, now=0.5)
        cloud.handle_request(1, 2, now=9.5)
        recorder.finish(10.0)
        log = read_flight(path)
        assert len(log.windows) == 10
        for window in log.windows[1:9]:
            assert window["requests"] == 0
            assert not window.get("outcomes")
        assert log.windows[0]["requests"] == 1
        assert log.windows[9]["requests"] == 1

    def test_trailing_partial_window_is_flagged(self, small_corpus, tmp_path):
        path = str(tmp_path / "partial.jsonl")
        cloud = make_cloud(small_corpus)
        recorder = cloud.attach_flight(FlightRecorder(path, window=4.0))
        cloud.handle_request(0, 1, now=5.0)
        recorder.finish(6.0)
        log = read_flight(path)
        assert [w.get("partial", False) for w in log.windows] == [
            False, True,
        ]
        assert log.windows[1]["end"] == pytest.approx(6.0)

    def test_same_seed_artifacts_are_byte_identical(
        self, small_corpus, tmp_path
    ):
        paths = []
        for name in ("one.jsonl", "two.jsonl"):
            path = str(tmp_path / name)
            cloud = make_cloud(small_corpus)
            recorder = cloud.attach_flight(FlightRecorder(path, window=2.0))
            _drive(cloud)
            recorder.finish(60.0)
            paths.append(path)
        first, second = (open(p, "rb").read() for p in paths)
        assert first == second
        assert len(first) > 0

    def test_resume_continues_window_numbering(self, small_corpus, tmp_path):
        path = str(tmp_path / "resume.jsonl")
        cloud = make_cloud(small_corpus)
        cloud.attach_flight(FlightRecorder(path, window=1.0))
        for i in range(4):
            cloud.handle_request(i % len(cloud.caches), i, now=0.5 + i)
        # Crash: no finish(), plus a torn fragment from a mid-write tear.
        with open(path, "ab") as fh:
            fh.write(b'{"index":3,"type":"win')
        cloud.detach_flight()

        resumed = FlightRecorder.resume(path)
        fresh = make_cloud(small_corpus)
        fresh.attach_flight(resumed)
        fresh.handle_request(0, 5, now=4.5)
        resumed.finish(5.0)
        log = read_flight(path)
        assert not log.torn_tail
        assert [w["index"] for w in log.windows] == list(range(5))
        assert log.summary["windows"] == 5

    def test_fabric_traffic_lands_in_windows(self, small_corpus, tmp_path):
        path = str(tmp_path / "fabric.jsonl")
        cloud = make_cloud(small_corpus)
        recorder = cloud.attach_flight(FlightRecorder(path, window=10.0))
        _drive(cloud)
        recorder.finish(60.0)
        log = read_flight(path)
        categories = {c for w in log.windows for c in w.get("fabric", {})}
        assert "control" in categories
        total_bytes = sum(
            pair[1]
            for w in log.windows
            for pair in w.get("fabric", {}).values()
        )
        assert total_bytes == cloud.transport.meter.total_bytes

    def test_cost_deltas_sum_to_cumulative_profile(
        self, small_corpus, tmp_path
    ):
        path = str(tmp_path / "cost.jsonl")
        cloud = make_cloud(small_corpus)
        recorder = cloud.attach_flight(FlightRecorder(path, window=7.0))
        _drive(cloud)
        recorder.finish(60.0)
        log = read_flight(path)
        summed = {phase: 0 for phase in PHASES}
        for window in log.windows:
            for phase, pair in window.get("cost", {}).items():
                summed[phase] += pair[1]
        assert summed == recorder.profile.units


# ----------------------------------------------------------------------
# Determinism across run paths (jobs, streaming)
# ----------------------------------------------------------------------
def _sweep_spec(key, flight_path, streaming=True, alpha=0.6):
    workload = WorkloadSpec(
        generator_config=WorkloadConfig(
            num_documents=80,
            num_caches=4,
            request_rate_per_cache=40.0,
            update_rate=15.0,
            duration_minutes=8.0,
            alpha_requests=alpha,
            seed=11,
        ),
        corpus_documents=80,
        corpus_seed=11,
    )
    config = CloudConfig(
        num_caches=4,
        num_rings=2,
        intra_gen=100,
        cycle_length=5.0,
        assignment=AssignmentScheme.DYNAMIC,
        placement=PlacementScheme.UTILITY,
        seed=11,
    )
    return ExperimentSpec(
        key=key,
        config=config,
        workload=workload,
        duration=8.0,
        warmup=0.0,
        streaming=streaming,
        flight=FlightSpec(path=str(flight_path), window=2.0),
    )


class TestFlightSweepDeterminism:
    def test_artifacts_byte_identical_across_jobs(self, tmp_path):
        artifacts = {}
        for jobs in (1, 2):
            base = tmp_path / f"jobs{jobs}"
            base.mkdir()
            specs = [
                _sweep_spec("a", base / "a.jsonl", alpha=0.4),
                _sweep_spec("b", base / "b.jsonl", alpha=0.9),
            ]
            results = run_sweep(specs, jobs=jobs)
            assert len(results) == 2
            artifacts[jobs] = {
                name: (base / name).read_bytes()
                for name in ("a.jsonl", "b.jsonl")
            }
        assert artifacts[1] == artifacts[2]
        assert all(artifacts[1].values())

    def test_streaming_matches_materialized_bytes(self, tmp_path):
        streamed_path = tmp_path / "streamed.jsonl"
        materialized_path = tmp_path / "materialized.jsonl"
        run_spec(_sweep_spec("s", streamed_path, streaming=True))
        run_spec(_sweep_spec("m", materialized_path, streaming=False))
        streamed = streamed_path.read_bytes()
        assert streamed == materialized_path.read_bytes()
        assert len(streamed) > 0


# ----------------------------------------------------------------------
# Rendering and diffing
# ----------------------------------------------------------------------
@pytest.fixture
def recorded_log(small_corpus, tmp_path):
    path = str(tmp_path / "report.jsonl")
    cloud = make_cloud(small_corpus)
    recorder = cloud.attach_flight(FlightRecorder(path, window=5.0))
    _drive(cloud)
    recorder.finish(60.0)
    return path, read_flight(path)


class TestRenderAndDiff:
    def test_report_carries_every_section(self, recorded_log):
        _, log = recorded_log
        report = render_flight_report(log)
        for section in (
            "flight report",
            "throughput (requests / sim-second)",
            "outcome mix",
            "per-phase cost stack",
            "hottest documents by holder-walk length",
        ):
            assert section in report
        assert "holder_verify" in report

    def test_html_report_embeds_escaped_text(self, recorded_log):
        _, log = recorded_log
        html = render_flight_html(log)
        assert html.startswith("<!DOCTYPE html>")
        assert "<pre>" in html
        assert "outcome mix" in html

    def test_self_diff_is_all_ok(self, recorded_log):
        _, log = recorded_log
        lines, ok = diff_flights(log, log)
        assert ok
        assert lines and all(line.startswith("OK") for line in lines)

    def test_perturbed_window_fails_diff(self, recorded_log):
        path, log = recorded_log
        perturbed = read_flight(path)
        perturbed.windows[3]["requests"] *= 5
        lines, ok = diff_flights(log, perturbed)
        assert not ok
        assert any(
            line.startswith("FAIL") and "throughput" in line for line in lines
        )

    def test_window_count_mismatch_is_structural_fail(self, recorded_log):
        path, log = recorded_log
        truncated = read_flight(path)
        truncated.windows.pop()
        lines, ok = diff_flights(log, truncated)
        assert not ok
        assert any("window count" in line for line in lines)

    def test_sparkline_shapes(self):
        assert sparkline([]) == ""
        flat = sparkline([3.0, 3.0, 3.0])
        assert len(set(flat)) == 1
        ramp = sparkline([float(i) for i in range(8)])
        assert ramp[0] == "▁" and ramp[-1] == "█"
        wide = sparkline([float(i) for i in range(500)], width=60)
        assert len(wide) == 60


# ----------------------------------------------------------------------
# Monitor integration: windowed profile series
# ----------------------------------------------------------------------
class TestMonitorProfileSeries:
    def _run(self, small_corpus, attach):
        from repro.experiments.runner import TraceFeeder
        from repro.metrics.collector import CloudMonitor
        from repro.simulation.engine import Simulator
        from repro.workload.trace import RequestRecord, Trace, UpdateRecord

        cloud = make_cloud(small_corpus)
        if attach:
            cloud.attach_profile(WorkProfile())
        simulator = Simulator()
        monitor = CloudMonitor(cloud, simulator, period=10.0)
        monitor.start()
        trace = Trace(
            requests=[
                RequestRecord(t * 0.2, int(t) % 4, int(t * 7) % 50)
                for t in range(200)
            ],
            updates=[UpdateRecord(float(t) + 0.5, t % 50) for t in range(40)],
        )
        TraceFeeder(simulator, cloud, trace.merged()).start()
        simulator.run_until(40.0)
        return monitor

    def test_absent_without_profile(self, small_corpus):
        monitor = self._run(small_corpus, attach=False)
        assert "holder_walk_mean" not in monitor.series
        assert "holder_verify_units" not in monitor.series

    def test_windowed_walk_series_with_profile(self, small_corpus):
        monitor = self._run(small_corpus, attach=True)
        units = [v for _, v in monitor.series["holder_verify_units"].items()]
        means = [v for _, v in monitor.series["holder_walk_mean"].items()]
        assert len(units) == 4
        assert sum(units) > 0
        assert all(value >= 0.0 for value in means)


# ----------------------------------------------------------------------
# Acceptance: million-request streaming replay, O(window) resident
# ----------------------------------------------------------------------
#: Peak resident bound for the traced steady-state slice of the replay:
#: per-request garbage + flight window accumulators + bounded cache
#: churn.  A materialized million-record trace alone would be ~100+ MB;
#: the streaming drive plus recorder peaks under 4 MiB in practice.
MEMORY_BUDGET_BYTES = 16 * 1024 * 1024

#: Requests inside the tracemalloc-guarded slice.  tracemalloc costs
#: ~7x on this workload, so the guard samples a 100k-request window in
#: the middle of the run (cloud warm, holder sets full) rather than
#: tracing all one million; any state that grows per-request would
#: still accumulate — and register — during the slice.
TRACED_SLICE_START = 450_000
TRACED_SLICE_END = 550_000


@pytest.mark.slow
class TestMillionRequestFlight:
    def test_streaming_replay_bounded_and_series_non_degenerate(self, tmp_path):
        from repro.core.cloud import CacheCloud
        from repro.workload.documents import build_corpus
        from repro.workload.generator import SyntheticTraceGenerator
        from repro.workload.trace import UpdateRecord, merge_streams

        # 10 caches x 200 req/min x 500 min = one million offered
        # requests, streamed straight from the generator into the cloud
        # (no simulator, no materialized trace).
        duration = 500.0
        workload = WorkloadConfig(
            num_documents=2_000,
            num_caches=10,
            request_rate_per_cache=200.0,
            update_rate=50.0,
            duration_minutes=duration,
            seed=11,
        )
        corpus = build_corpus(2_000)
        config = CloudConfig(
            num_caches=10,
            num_rings=5,
            intra_gen=1000,
            cycle_length=10.0,
            assignment=AssignmentScheme.DYNAMIC,
            placement=PlacementScheme.AD_HOC,
            capacity_bytes=max(1, int(corpus.total_bytes * 0.05)),
            seed=11,
        )
        cloud = CacheCloud(config, corpus)
        generator = SyntheticTraceGenerator(workload)
        path = str(tmp_path / "million.jsonl")
        recorder = FlightRecorder(path, window=25.0)
        cloud.attach_flight(recorder)

        requests = 0
        peak = 0
        next_cycle = config.cycle_length
        for record in merge_streams(generator.requests(), generator.updates()):
            while record.time >= next_cycle:
                cloud.run_cycle(now=next_cycle)
                next_cycle += config.cycle_length
            if isinstance(record, UpdateRecord):
                cloud.handle_update(record.doc_id, record.time)
                continue
            cloud.handle_request(record.cache_id, record.doc_id, record.time)
            requests += 1
            if requests == TRACED_SLICE_START:
                tracemalloc.start()
                tracemalloc.reset_peak()
            elif requests == TRACED_SLICE_END:
                _, peak = tracemalloc.get_traced_memory()
                tracemalloc.stop()
        recorder.finish(duration)

        assert requests > 985_000  # Poisson noise around 1M
        assert 0 < peak < MEMORY_BUDGET_BYTES, (
            f"flight-attached replay peaked at {peak / 2**20:.1f} MiB over a "
            f"{TRACED_SLICE_END - TRACED_SLICE_START}-request steady-state "
            f"slice; recorder state is not O(window)"
        )

        log = read_flight(path)
        full = [w for w in log.windows if not w.get("partial")]
        assert len(full) == 20
        # Non-degenerate series: every window saw traffic, and the
        # (Poisson) per-window request counts are not all equal.
        counts = [w["requests"] for w in full]
        assert min(counts) > 0
        assert len(set(counts)) > 1

        # The holder-walk knee: as holder sets fill, answer_lookup walks
        # more candidates per lookup, so holder_verify's share of the
        # total work visibly grows from the first quarter to the last.
        def verify_share(windows):
            total = verify = 0
            for window in windows:
                for phase, pair in window.get("cost", {}).items():
                    total += pair[1]
                    if phase == "holder_verify":
                        verify += pair[1]
            return verify / total if total else 0.0

        quarter = len(full) // 4
        early = verify_share(full[:quarter])
        late = verify_share(full[-quarter:])
        assert late > early, (
            f"holder_verify share did not grow: {early:.4f} -> {late:.4f}"
        )
