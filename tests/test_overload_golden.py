"""Zero-cost overload equivalence and flash-crowd sweep determinism.

The overload model's pass-through promise, pinned at full pipeline scale:
attaching :data:`~repro.core.overload.ZERO_COST_OVERLOAD` (unbounded
queues, zero service time, unreachable watermarks) to every sweep point
must reproduce the *golden* fingerprints captured on code that predates
the overload subsystem entirely — same outcomes, same latencies, same
bytes, same resilience counters, hash for hash. This is the strongest
form of "with no queues configured, the simulator is value-identical to
the pre-overload simulator".

The flash-crowd sweep itself is pinned to determinism: the same seed must
produce the same fingerprint at any job count (the CI overload-smoke job
re-checks this cross-process).
"""

from repro.core.overload import ZERO_COST_OVERLOAD
from repro.experiments.figures import TINY_SCALE, figure3, figure6
from repro.experiments.overload import overload_sweep
from repro.experiments.reporting import fingerprint
from repro.experiments.resilience import resilience_sweep
from tests.test_golden_fingerprints import (
    GOLDEN_FIGURE3,
    GOLDEN_FIGURE6,
    GOLDEN_RESILIENCE,
)


class TestZeroCostOverloadIsValueIdentical:
    """ZERO_COST_OVERLOAD runs hash to the pre-overload golden values."""

    def test_figure3_fingerprint_unchanged(self):
        result = figure3(TINY_SCALE, jobs=1, overload=ZERO_COST_OVERLOAD)
        assert fingerprint(result) == GOLDEN_FIGURE3

    def test_figure6_fingerprint_unchanged(self):
        result = figure6(
            TINY_SCALE, alphas=(0.0, 0.9), jobs=1, overload=ZERO_COST_OVERLOAD
        )
        assert fingerprint(result) == GOLDEN_FIGURE6

    def test_resilience_fingerprint_unchanged(self):
        result = resilience_sweep(
            TINY_SCALE,
            loss_rates=(0.0, 0.2),
            churn_rates=(0.0, 0.05),
            jobs=1,
            overload=ZERO_COST_OVERLOAD,
        )
        assert fingerprint(result) == GOLDEN_RESILIENCE


class TestOverloadSweepDeterminism:
    def test_same_seed_same_fingerprint(self):
        first = overload_sweep(
            scale=TINY_SCALE, multipliers=(16.0,), jobs=1
        )
        second = overload_sweep(
            scale=TINY_SCALE, multipliers=(16.0,), jobs=1
        )
        assert fingerprint(first) == fingerprint(second)
        assert not first.failures

    def test_saturation_engages_degradation(self):
        result = overload_sweep(scale=TINY_SCALE, multipliers=(16.0,), jobs=1)
        row = result.row(16.0, "cooperative")
        rejected_percent, shed_percent = row[2], row[3]
        assert rejected_percent > 0.0
        assert shed_percent > 0.0
        # The windowed monitor series rode along for both arms.
        series = result.series[result.point_key(16.0, "cooperative")]
        assert len(series["rejection_rate"]) == 20
        assert max(value for _, value in series["rejection_rate"]) > 0.0
