"""Unit tests for the simulation clock."""

import pytest

from repro.simulation.clock import ClockError, SimulationClock


class TestSimulationClock:
    def test_starts_at_zero_by_default(self):
        assert SimulationClock().now == 0.0

    def test_starts_at_given_time(self):
        assert SimulationClock(5.5).now == 5.5

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            SimulationClock(-1.0)

    def test_advance_moves_forward(self):
        clock = SimulationClock()
        clock.advance_to(3.0)
        assert clock.now == 3.0

    def test_advance_to_same_time_is_allowed(self):
        clock = SimulationClock(2.0)
        clock.advance_to(2.0)
        assert clock.now == 2.0

    def test_advance_backwards_raises(self):
        clock = SimulationClock(10.0)
        with pytest.raises(ClockError):
            clock.advance_to(9.999)

    def test_reset(self):
        clock = SimulationClock(10.0)
        clock.reset()
        assert clock.now == 0.0

    def test_reset_rejects_negative(self):
        with pytest.raises(ValueError):
            SimulationClock().reset(-0.1)

    def test_repr_mentions_time(self):
        assert "3.5" in repr(SimulationClock(3.5))
