"""Unit tests for the discrete-event engine."""

import pytest

from repro.simulation.engine import SimulationError, Simulator
from repro.simulation.events import EventPriority


class TestScheduling:
    def test_schedule_in_past_raises(self):
        sim = Simulator(start_time=5.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(4.0, lambda: None)

    def test_schedule_at_now_is_allowed(self):
        sim = Simulator(start_time=5.0)
        fired = []
        sim.schedule_at(5.0, lambda: fired.append(sim.now))
        sim.run_until(5.0)
        assert fired == [5.0]

    def test_schedule_in_negative_delay_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_in(-0.1, lambda: None)

    def test_schedule_in_is_relative(self):
        sim = Simulator(start_time=2.0)
        fired = []
        sim.schedule_in(3.0, lambda: fired.append(sim.now))
        sim.run_until(10.0)
        assert fired == [5.0]


class TestExecutionOrder:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule_at(3.0, lambda: order.append(3))
        sim.schedule_at(1.0, lambda: order.append(1))
        sim.schedule_at(2.0, lambda: order.append(2))
        sim.run_until(5.0)
        assert order == [1, 2, 3]

    def test_priority_orders_same_time_events(self):
        sim = Simulator()
        order = []
        sim.schedule_at(1.0, lambda: order.append("request"), EventPriority.REQUEST)
        sim.schedule_at(1.0, lambda: order.append("control"), EventPriority.CONTROL)
        sim.schedule_at(1.0, lambda: order.append("metrics"), EventPriority.METRICS)
        sim.run_until(1.0)
        assert order == ["control", "request", "metrics"]

    def test_insertion_order_breaks_remaining_ties(self):
        sim = Simulator()
        order = []
        for tag in "abc":
            sim.schedule_at(1.0, lambda t=tag: order.append(t))
        sim.run_until(1.0)
        assert order == ["a", "b", "c"]

    def test_callback_can_schedule_more_events(self):
        sim = Simulator()
        seen = []

        def chain(n):
            seen.append(n)
            if n < 3:
                sim.schedule_in(1.0, lambda: chain(n + 1))

        sim.schedule_at(0.0, lambda: chain(0))
        sim.run_until(10.0)
        assert seen == [0, 1, 2, 3]


class TestRunUntil:
    def test_clock_lands_on_end_time_even_if_queue_drains(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        sim.run_until(7.5)
        assert sim.now == 7.5

    def test_inclusive_boundary(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(5.0, lambda: fired.append("x"))
        sim.run_until(5.0)
        assert fired == ["x"]

    def test_exclusive_boundary(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(5.0, lambda: fired.append("x"))
        sim.run_until(5.0, inclusive=False)
        assert fired == []
        assert sim.pending_events == 1

    def test_end_time_before_now_raises(self):
        sim = Simulator(start_time=3.0)
        with pytest.raises(SimulationError):
            sim.run_until(2.0)

    def test_returns_dispatch_count(self):
        sim = Simulator()
        for t in (1.0, 2.0, 9.0):
            sim.schedule_at(t, lambda: None)
        assert sim.run_until(5.0) == 2


class TestCancellationAndStop:
    def test_cancelled_event_is_skipped(self):
        sim = Simulator()
        fired = []
        event = sim.schedule_at(1.0, lambda: fired.append("no"))
        sim.schedule_at(1.0, lambda: fired.append("yes"))
        event.cancel()
        sim.run_until(2.0)
        assert fired == ["yes"]

    def test_stop_exits_loop(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule_at(2.0, lambda: fired.append(2))
        sim.run_until(10.0)
        assert fired == [1]
        assert sim.pending_events == 1

    def test_peek_next_time_skips_cancelled(self):
        sim = Simulator()
        event = sim.schedule_at(1.0, lambda: None)
        sim.schedule_at(2.0, lambda: None)
        event.cancel()
        assert sim.peek_next_time() == 2.0

    def test_peek_next_time_empty(self):
        assert Simulator().peek_next_time() is None


class TestRun:
    def test_run_drains_queue(self):
        sim = Simulator()
        fired = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule_at(t, lambda t=t: fired.append(t))
        count = sim.run()
        assert count == 3
        assert fired == [1.0, 2.0, 3.0]

    def test_run_respects_max_events(self):
        sim = Simulator()
        for t in (1.0, 2.0, 3.0):
            sim.schedule_at(t, lambda: None)
        assert sim.run(max_events=2) == 2
        assert sim.pending_events == 1
