"""Unit tests for event ordering and cancellation."""

import pytest

from repro.simulation.events import Event, EventPriority


def noop():
    return None


class TestEventValidation:
    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            Event(-1.0, noop)

    def test_rejects_non_callable(self):
        with pytest.raises(TypeError):
            Event(0.0, "not callable")


class TestEventOrdering:
    def test_earlier_time_sorts_first(self):
        early = Event(1.0, noop)
        late = Event(2.0, noop)
        assert early < late

    def test_priority_breaks_time_ties(self):
        control = Event(1.0, noop, priority=EventPriority.CONTROL)
        request = Event(1.0, noop, priority=EventPriority.REQUEST)
        assert control < request

    def test_sequence_breaks_full_ties(self):
        first = Event(1.0, noop)
        second = Event(1.0, noop)
        assert first < second  # insertion order
        assert first.seq < second.seq

    def test_priority_classes_are_ordered_by_causality(self):
        assert (
            EventPriority.CONTROL
            < EventPriority.UPDATE
            < EventPriority.REQUEST
            < EventPriority.TRANSFER
            < EventPriority.METRICS
        )


class TestEventCancellation:
    def test_starts_uncancelled(self):
        assert not Event(0.0, noop).cancelled

    def test_cancel_sets_flag(self):
        event = Event(0.0, noop)
        event.cancel()
        assert event.cancelled

    def test_repr_reflects_state(self):
        event = Event(0.0, noop, label="tick")
        assert "pending" in repr(event)
        assert "tick" in repr(event)
        event.cancel()
        assert "cancelled" in repr(event)
