"""Unit tests for the periodic process helper."""

import pytest

from repro.simulation.engine import Simulator
from repro.simulation.process import PeriodicProcess


class TestPeriodicProcess:
    def test_rejects_non_positive_period(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PeriodicProcess(sim, 0.0, lambda t: None)

    def test_fires_every_period(self):
        sim = Simulator()
        times = []
        process = PeriodicProcess(sim, 10.0, times.append)
        process.start()
        sim.run_until(35.0)
        assert times == [10.0, 20.0, 30.0]
        assert process.firings == 3

    def test_first_at_overrides_phase(self):
        sim = Simulator()
        times = []
        process = PeriodicProcess(sim, 10.0, times.append)
        process.start(first_at=3.0)
        sim.run_until(25.0)
        assert times == [3.0, 13.0, 23.0]

    def test_stop_cancels_future_firings(self):
        sim = Simulator()
        times = []
        process = PeriodicProcess(sim, 5.0, times.append)
        process.start()
        sim.run_until(12.0)
        process.stop()
        sim.run_until(40.0)
        assert times == [5.0, 10.0]
        assert not process.active

    def test_callback_may_stop_the_process(self):
        sim = Simulator()
        times = []

        def once(t):
            times.append(t)
            process.stop()

        process = PeriodicProcess(sim, 5.0, once)
        process.start()
        sim.run_until(50.0)
        assert times == [5.0]

    def test_double_start_is_idempotent(self):
        sim = Simulator()
        times = []
        process = PeriodicProcess(sim, 5.0, times.append)
        process.start()
        process.start()
        sim.run_until(6.0)
        assert times == [5.0]

    def test_active_property(self):
        sim = Simulator()
        process = PeriodicProcess(sim, 5.0, lambda t: None)
        assert not process.active
        process.start()
        assert process.active
