"""Unit tests for named random streams."""

from repro.simulation.rng import RandomStreams, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "x") == derive_seed(42, "x")

    def test_name_sensitivity(self):
        assert derive_seed(42, "x") != derive_seed(42, "y")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_adjacent_seeds_decorrelated(self):
        # SHA-derived child seeds should differ in far more than the low bits.
        a = derive_seed(1, "requests")
        b = derive_seed(2, "requests")
        assert bin(a ^ b).count("1") > 8


class TestRandomStreams:
    def test_same_name_returns_same_stream(self):
        streams = RandomStreams(0)
        assert streams.get("a") is streams.get("a")

    def test_different_names_are_independent(self):
        streams = RandomStreams(0)
        a = [streams.get("a").random() for _ in range(5)]
        b = [streams.get("b").random() for _ in range(5)]
        assert a != b

    def test_streams_reproducible_across_instances(self):
        first = [RandomStreams(9).get("req").random() for _ in range(3)]
        second = [RandomStreams(9).get("req").random() for _ in range(3)]
        assert first == second

    def test_stream_isolated_from_consumption_of_other_streams(self):
        lhs = RandomStreams(5)
        rhs = RandomStreams(5)
        # Consuming "noise" heavily on one side must not shift "requests".
        for _ in range(1000):
            lhs.get("noise").random()
        assert lhs.get("requests").random() == rhs.get("requests").random()

    def test_fork_creates_independent_family(self):
        parent = RandomStreams(5)
        child = parent.fork("cloud-0")
        assert child.master_seed != parent.master_seed
        assert (
            parent.get("requests").random() != child.get("requests").random()
        )

    def test_fork_deterministic(self):
        a = RandomStreams(5).fork("x").get("s").random()
        b = RandomStreams(5).fork("x").get("s").random()
        assert a == b

    def test_reset_rederives(self):
        streams = RandomStreams(3)
        first = streams.get("s").random()
        streams.reset()
        assert streams.get("s").random() == first
