"""Unit tests for the event tracer."""

import pytest

from repro.simulation.engine import Simulator
from repro.simulation.events import EventPriority
from repro.simulation.tracing import EventTracer


class TestLifecycle:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            EventTracer(capacity=0)

    def test_double_attach_raises(self):
        sim = Simulator()
        tracer = EventTracer().attach(sim)
        with pytest.raises(RuntimeError):
            tracer.attach(sim)

    def test_detach_restores_scheduling(self):
        sim = Simulator()
        tracer = EventTracer().attach(sim)
        tracer.detach()
        sim.schedule_at(1.0, lambda: None, label="after-detach")
        sim.run_until(2.0)
        assert tracer.dispatched == 0

    def test_detach_restores_original_schedule_at(self):
        sim = Simulator()
        original = sim.schedule_at
        tracer = EventTracer().attach(sim)
        assert sim.schedule_at is not original  # attach really wrapped it
        tracer.detach()
        assert sim.schedule_at == original

    def test_events_traced_before_detach_still_record(self):
        sim = Simulator()
        tracer = EventTracer().attach(sim)
        sim.schedule_at(1.0, lambda: None, label="armed-while-attached")
        tracer.detach()
        sim.run_until(2.0)
        assert tracer.labels_in_order() == ["armed-while-attached"]

    def test_detach_twice_is_noop(self):
        tracer = EventTracer().attach(Simulator())
        tracer.detach()
        tracer.detach()


class TestRecording:
    def test_records_dispatches_in_order(self):
        sim = Simulator()
        tracer = EventTracer().attach(sim)
        sim.schedule_at(2.0, lambda: None, label="b")
        sim.schedule_at(1.0, lambda: None, label="a")
        sim.run_until(5.0)
        assert tracer.labels_in_order() == ["a", "b"]
        assert tracer.records()[0].time == 1.0
        assert tracer.records()[0].index == 0

    def test_priority_captured(self):
        sim = Simulator()
        tracer = EventTracer().attach(sim)
        sim.schedule_at(1.0, lambda: None, priority=EventPriority.CONTROL, label="c")
        sim.run_until(2.0)
        assert tracer.records()[0].priority is EventPriority.CONTROL

    def test_unlabelled_events_get_placeholder(self):
        sim = Simulator()
        tracer = EventTracer().attach(sim)
        sim.schedule_at(1.0, lambda: None)
        sim.run_until(2.0)
        assert tracer.labels_in_order() == ["<unlabelled>"]

    def test_pre_attach_events_are_traced(self):
        # Regression test for the attach blind spot: events already queued
        # when the tracer attaches must be traced, not silently skipped.
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None, label="early")
        tracer = EventTracer().attach(sim)
        sim.schedule_at(2.0, lambda: None, label="late")
        sim.run_until(5.0)
        assert tracer.labels_in_order() == ["early", "late"]

    def test_pre_attach_event_metadata_preserved(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(
            1.0,
            lambda: fired.append(True),
            priority=EventPriority.CONTROL,
            label="early",
        )
        tracer = EventTracer().attach(sim)
        sim.run_until(2.0)
        assert fired == [True]  # the original callback still runs
        record = tracer.records()[0]
        assert record.priority is EventPriority.CONTROL
        assert record.label == "early"

    def test_pre_attach_cancelled_events_not_traced(self):
        sim = Simulator()
        event = sim.schedule_at(1.0, lambda: None, label="cancelled")
        event.cancel()
        tracer = EventTracer().attach(sim)
        sim.run_until(2.0)
        assert tracer.labels_in_order() == []

    def test_callback_still_runs(self):
        sim = Simulator()
        EventTracer().attach(sim)
        fired = []
        sim.schedule_at(1.0, lambda: fired.append(True), label="x")
        sim.run_until(2.0)
        assert fired == [True]

    def test_ring_buffer_bounded(self):
        sim = Simulator()
        tracer = EventTracer(capacity=5).attach(sim)
        for i in range(10):
            sim.schedule_at(float(i + 1), lambda: None, label=f"e{i}")
        sim.run_until(20.0)
        assert tracer.dispatched == 10
        assert len(tracer.records()) == 5
        assert tracer.labels_in_order() == [f"e{i}" for i in range(5, 10)]


class TestQueries:
    def build(self):
        sim = Simulator()
        tracer = EventTracer().attach(sim)
        for t, label in ((1.0, "tick"), (2.0, "tock"), (3.0, "tick")):
            sim.schedule_at(t, lambda: None, label=label)
        sim.run_until(5.0)
        return tracer

    def test_with_label(self):
        tracer = self.build()
        assert len(tracer.with_label("tick")) == 2

    def test_matching(self):
        tracer = self.build()
        late = tracer.matching(lambda r: r.time >= 2.0)
        assert [r.label for r in late] == ["tock", "tick"]

    def test_between(self):
        tracer = self.build()
        assert [r.label for r in tracer.between(1.5, 3.0)] == ["tock"]

    def test_clear_keeps_total(self):
        tracer = self.build()
        tracer.clear()
        assert tracer.records() == []
        assert tracer.dispatched == 3

    def test_dump_format(self):
        tracer = self.build()
        dump = tracer.dump(limit=2)
        assert "tock" in dump and "tick" in dump
        assert dump.count("\n") == 1


class TestIntegrationWithPeriodicProcess:
    def test_traces_cycle_firings(self):
        from repro.simulation.process import PeriodicProcess

        sim = Simulator()
        tracer = EventTracer().attach(sim)
        process = PeriodicProcess(sim, 5.0, lambda t: None, label="cycle")
        process.start()
        sim.run_until(16.0)
        assert len(tracer.with_label("cycle")) == 3
