"""Hypothesis stateful machines for the core mutable data structures.

Rule-based state machines drive :class:`CacheStorage` and
:class:`BeaconRing` through arbitrary interleavings of their operations,
checking invariants a shadow model maintains in parallel. These catch
bookkeeping desyncs (byte accounting, policy/tracked-set drift, arc
partition corruption) that example-based tests rarely reach.
"""

import random

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.core.ring import BeaconRing
from repro.edgecache.replacement import make_policy
from repro.edgecache.storage import CacheStorage

DOC_IDS = st.integers(min_value=0, max_value=19)
SIZES = st.integers(min_value=10, max_value=400)


class StorageMachine(RuleBasedStateMachine):
    """CacheStorage under random admit/access/refresh/remove sequences."""

    def __init__(self):
        super().__init__()
        self.now = 0.0

    @initialize(
        capacity=st.one_of(st.none(), st.integers(min_value=400, max_value=1200)),
        policy_name=st.sampled_from(["lru", "fifo", "lfu", "gdsf"]),
    )
    def setup(self, capacity, policy_name):
        self.capacity = capacity
        self.storage = CacheStorage(
            capacity_bytes=capacity, policy=make_policy(policy_name)
        )
        self.model = {}  # doc_id -> size

    def _tick(self):
        self.now += 1.0
        return self.now

    @rule(doc_id=DOC_IDS, size=SIZES, version=st.integers(0, 5))
    def admit(self, doc_id, size, version):
        now = self._tick()
        if doc_id in self.model:
            # Re-admission refreshes in place at the existing entry.
            self.storage.admit(doc_id, self.model[doc_id], version, now)
            return
        evicted = self.storage.admit(doc_id, size, version, now)
        if evicted is None:
            assert self.capacity is not None and size > self.capacity
            return
        for victim in evicted:
            assert victim in self.model
            del self.model[victim]
        self.model[doc_id] = size

    @rule(doc_id=DOC_IDS)
    def access(self, doc_id):
        now = self._tick()
        if doc_id in self.model:
            doc = self.storage.access(doc_id, now)
            assert doc.doc_id == doc_id
        else:
            try:
                self.storage.access(doc_id, now)
                raise AssertionError("access to absent doc must raise")
            except KeyError:
                pass

    @rule(doc_id=DOC_IDS)
    @precondition(lambda self: self.model)
    def remove_resident(self, doc_id):
        now = self._tick()
        if doc_id not in self.model:
            return
        self.storage.remove(doc_id, now)
        del self.model[doc_id]

    @rule(doc_id=DOC_IDS, version=st.integers(1, 9))
    def refresh(self, doc_id, version):
        now = self._tick()
        if doc_id not in self.model:
            return
        self.storage.refresh_version(doc_id, version, now=now)
        assert self.storage.get(doc_id).version == version

    @invariant()
    def resident_set_matches_model(self):
        assert set(self.storage) == set(self.model)
        assert len(self.storage) == len(self.model)
        assert len(self.storage.policy) == len(self.model)

    @invariant()
    def byte_accounting_exact(self):
        assert self.storage.used_bytes == sum(self.model.values())

    @invariant()
    def never_over_capacity(self):
        if self.capacity is not None:
            assert self.storage.used_bytes <= self.capacity


class RingMachine(RuleBasedStateMachine):
    """BeaconRing under random rebalances and membership churn."""

    INTRA_GEN = 48

    @initialize(size=st.integers(min_value=1, max_value=6))
    def setup(self, size):
        self.members = list(range(size))
        self.next_member = size
        self.ring = BeaconRing(self.members, self.INTRA_GEN)
        self.rng = random.Random(99)

    @rule(seed=st.integers(0, 10_000))
    def rebalance(self, seed):
        rng = random.Random(seed)
        per_irh = {k: rng.uniform(0, 5) for k in range(self.INTRA_GEN)}
        loads = {
            m: sum(per_irh[k] for k in self.ring.arc_of(m).values())
            for m in self.ring.members
        }
        self.ring.rebalance(loads, per_irh)

    @rule()
    @precondition(lambda self: len(self.members) >= 2)
    def remove_member(self):
        victim = self.rng.choice(self.members)
        self.ring.remove_member(victim)
        self.members.remove(victim)

    @rule(position_seed=st.integers(0, 6))
    @precondition(lambda self: len(self.members) < 8)
    def add_member(self, position_seed):
        position = position_seed % (len(self.members) + 1)
        donor_index = position % len(self.members)
        donor = self.ring.members[donor_index]
        if self.ring.arc_of(donor).width < 2:
            return
        member = self.next_member
        self.next_member += 1
        self.ring.add_member(member, position)
        self.members.append(member)

    @invariant()
    def membership_consistent(self):
        assert sorted(self.ring.members) == sorted(self.members)

    @invariant()
    def arcs_partition_the_circle(self):
        total = sum(self.ring.arc_of(m).width for m in self.ring.members)
        assert total == self.INTRA_GEN
        table = self.ring.owner_table()
        for member in self.ring.members:
            assert table.count(member) == self.ring.arc_of(member).width
            assert self.ring.arc_of(member).width >= 1

    @invariant()
    def owner_lookup_agrees_with_arcs(self):
        for irh in range(0, self.INTRA_GEN, 7):
            owner = self.ring.owner_of(irh)
            assert self.ring.arc_of(owner).contains(irh)


TestStorageMachine = StorageMachine.TestCase
TestStorageMachine.settings = settings(max_examples=40, deadline=None, stateful_step_count=40)

TestRingMachine = RingMachine.TestCase
TestRingMachine.settings = settings(max_examples=40, deadline=None, stateful_step_count=30)
