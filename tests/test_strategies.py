"""Unit tests for the strategy plane (:mod:`repro.strategies`).

Covers the spec layer (validation, composition), the on-path admission
family's hop decisions, and — the accounting contract this PR's bugfix
satellite pins — that every requester-side decision ticks exactly one of
``stores`` / ``placement_rejects`` *at the requester's cache*, including
when an on-path strategy stores at an intermediate node mid-route.
"""

from __future__ import annotations

import pytest

from repro.core.cloud import CacheCloud
from repro.core.config import AssignmentScheme, CloudConfig, PlacementScheme
from repro.strategies import (
    BeaconPointStrategy,
    CUPTreeStrategy,
    KNOWN_SCHEMES,
    LCDStrategy,
    LCEStrategy,
    PolicyStrategy,
    ProbCacheStrategy,
    StrategySpec,
    build_strategy,
    default_spec,
)
from repro.workload.documents import build_corpus


def _config(**overrides) -> CloudConfig:
    base = dict(
        num_caches=4,
        num_rings=2,
        intra_gen=100,
        cycle_length=10.0,
        assignment=AssignmentScheme.DYNAMIC,
        placement=PlacementScheme.UTILITY,
        seed=3,
    )
    base.update(overrides)
    return CloudConfig(**base)


@pytest.fixture
def corpus():
    return build_corpus(50, fixed_size=1024)


def _cloud(scheme: str, corpus, **spec_knobs) -> CacheCloud:
    config = _config()
    strategy = build_strategy(StrategySpec(scheme=scheme, **spec_knobs), config)
    return CacheCloud(config, corpus, strategy=strategy)


def _drive(cloud, steps=80):
    """The fabric tests' deterministic request/update/cycle mix."""
    for i in range(steps):
        cloud.handle_request(
            i % len(cloud.caches), (7 * i) % len(cloud.corpus), now=float(i)
        )
        if i % 5 == 4:
            cloud.handle_update((3 * i) % len(cloud.corpus), now=float(i))
        if i % 20 == 19:
            cloud.run_cycle(now=float(i))


class TestStrategySpec:
    def test_known_schemes_build(self, corpus):
        config = _config()
        for scheme in KNOWN_SCHEMES:
            strategy = build_strategy(StrategySpec(scheme=scheme), config)
            assert scheme in strategy.name or strategy.name == scheme

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="unknown strategy scheme"):
            StrategySpec(scheme="mru")

    def test_probability_bounds(self):
        with pytest.raises(ValueError, match="store_probability"):
            StrategySpec(scheme="probcache", store_probability=1.5)
        with pytest.raises(ValueError, match="store_probability"):
            ProbCacheStrategy(store_probability=-0.1)

    def test_fanout_and_base_placement_validated(self):
        with pytest.raises(ValueError, match="tree_fanout"):
            StrategySpec(scheme="cup_tree", tree_fanout=0)
        with pytest.raises(ValueError, match="base_placement"):
            StrategySpec(scheme="cup_tree", base_placement="lce")

    def test_default_spec_mirrors_config_placement(self):
        config = _config(placement=PlacementScheme.BEACON)
        assert default_spec(config).scheme == "beacon"

    def test_composition_types(self):
        config = _config()
        assert isinstance(
            build_strategy(StrategySpec(scheme="beacon"), config),
            BeaconPointStrategy,
        )
        assert isinstance(
            build_strategy(StrategySpec(scheme="ad_hoc"), config),
            PolicyStrategy,
        )
        assert isinstance(
            build_strategy(StrategySpec(scheme="lce"), config), LCEStrategy
        )
        assert isinstance(
            build_strategy(StrategySpec(scheme="lcd"), config), LCDStrategy
        )
        cup = build_strategy(
            StrategySpec(scheme="cup_tree", base_placement="ad_hoc"), config
        )
        assert isinstance(cup, CUPTreeStrategy)
        assert cup.name == "cup_tree:ad_hoc"

    def test_config_composition_uses_clouds_own_policy(self, corpus):
        """Adaptive layers retune ``cloud.placement`` — the default strategy
        must share that exact object, not a private copy."""
        cloud = CacheCloud(_config(), corpus)
        assert cloud.strategy.policy is cloud.placement

    def test_explicit_strategy_rebinds_cloud_placement(self, corpus):
        config = _config()
        strategy = build_strategy(StrategySpec(scheme="ad_hoc"), config)
        cloud = CacheCloud(config, corpus, strategy=strategy)
        assert cloud.placement is strategy.policy
        assert cloud.placement.name == "ad_hoc"


class TestOnPathHopDecisions:
    """Micro-scenarios pinning where each on-path strategy leaves copies."""

    def _routed_request(self, cloud):
        """A (requester, doc) pair whose beacon is a different cache."""
        for doc_id in range(len(cloud.corpus)):
            beacon = cloud.beacon_for_doc(doc_id)
            requester = (beacon + 1) % len(cloud.caches)
            return requester, doc_id, beacon
        raise AssertionError("empty corpus")

    def test_lce_stores_at_both_hops(self, corpus):
        cloud = _cloud("lce", corpus)
        requester, doc_id, beacon = self._routed_request(cloud)
        cloud.handle_request(requester, doc_id, now=1.0)
        assert cloud.caches[beacon].holds(doc_id)
        assert cloud.caches[requester].holds(doc_id)
        assert cloud.caches[beacon].stats.stores == 1
        assert cloud.caches[requester].stats.stores == 1
        assert cloud.aggregate_stats().placement_rejects == 0

    def test_lcd_descends_one_level_per_retrieval(self, corpus):
        cloud = _cloud("lcd", corpus)
        requester, doc_id, beacon = self._routed_request(cloud)
        # First retrieval: origin-served via the beacon — the copy lands at
        # the beacon hop; the requester declines (one level down only).
        cloud.handle_request(requester, doc_id, now=1.0)
        assert cloud.caches[beacon].holds(doc_id)
        assert not cloud.caches[requester].holds(doc_id)
        assert cloud.caches[requester].stats.placement_rejects == 1
        # Second retrieval: a cloud hit off the beacon's copy — now the
        # requester stores (the copy descends to the edge).
        cloud.handle_request(requester, doc_id, now=2.0)
        assert cloud.caches[requester].holds(doc_id)
        assert cloud.caches[requester].stats.stores == 1

    def test_probcache_decisions_accounted_at_deciding_cache(self, corpus):
        cloud = _cloud("probcache", corpus)
        _drive(cloud)
        for cache in cloud.caches:
            decisions = cache.stats.stores + cache.stats.placement_rejects
            # Every decision this cache made is visible as exactly one tick.
            assert decisions > 0
        stats = cloud.aggregate_stats()
        assert stats.stores > 0 and stats.placement_rejects > 0

    def test_beacon_requester_decline_lands_on_requester(self, corpus):
        """The bugfix satellite's core claim: when the copy is stored
        mid-route (at the beacon hop), the requester-side decline must tick
        the *requester's* reject counter, not the beacon's."""
        cloud = _cloud("beacon", corpus)
        requester, doc_id, beacon = self._routed_request(cloud)
        cloud.handle_request(requester, doc_id, now=1.0)
        assert cloud.caches[beacon].stats.stores == 1
        assert cloud.caches[beacon].stats.placement_rejects == 0
        assert cloud.caches[requester].stats.stores == 0
        assert cloud.caches[requester].stats.placement_rejects == 1


#: Pinned (stores, placement_rejects) totals for the deterministic drive.
#: These are the accounting regression the bugfix satellite asks for: any
#: change to who decides (or double/dropped ticks) shifts these counts.
PINNED_ACCOUNTING = {
    "ad_hoc": (80, 0),
    "beacon": (50, 55),
    "utility": (79, 1),
    "expiration_age": (78, 2),
    "lce": (105, 0),
    "lcd": (68, 37),
    "probcache": (66, 48),
    "cup_tree": (79, 1),
}


class TestAccountingRegression:
    @pytest.mark.parametrize("scheme", sorted(PINNED_ACCOUNTING))
    def test_store_and_decline_counts_pinned(self, corpus, scheme):
        cloud = _cloud(scheme, corpus)
        _drive(cloud)
        stats = cloud.aggregate_stats()
        assert (stats.stores, stats.placement_rejects) == PINNED_ACCOUNTING[
            scheme
        ]

    def test_cup_tree_matches_its_base_placement_on_requests(self, corpus):
        """CUP-tree changes update propagation only; its request-path
        admission is the base policy, so request-side accounting matches."""
        assert PINNED_ACCOUNTING["cup_tree"] == PINNED_ACCOUNTING["utility"]
