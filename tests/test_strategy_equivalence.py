"""Structural equivalence: the strategy seam is invisible for paper schemes.

The tentpole refactor's safety proof. Each of the paper's four placement
schemes can now be composed two ways:

* **native** — a bare ``CloudConfig`` carrying the scheme as its
  ``placement`` field (the pre-refactor spelling; ``CacheCloud`` composes
  the default strategy from it), and
* **spec** — a config carrying a *different* placement (the utility
  baseline) plus ``build_strategy(StrategySpec(scheme=...))`` injected at
  the composition root.

Driven with the fabric suite's deterministic request/update/cycle mix, the
two must be indistinguishable: message-for-message identical dispatch
logs, identical request outcomes/latencies, identical meter and ledger
totals, identical cache stats — and zero draws from the global ``random``
module (strategy composition must never consume shared randomness, or
every seeded stream downstream would shift).
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest

from repro.core.cloud import CacheCloud
from repro.core.config import PlacementScheme
from repro.strategies import PAPER_SCHEMES, StrategySpec, build_strategy
from tests.conftest import make_cloud


def _drive(cloud, steps=60):
    """The fabric suite's deterministic request/update/cycle mix."""
    results = []
    for i in range(steps):
        cache_id = i % len(cloud.caches)
        doc_id = (7 * i) % len(cloud.corpus)
        result = cloud.handle_request(cache_id, doc_id, now=float(i))
        results.append((result.outcome, result.latency_ms, result.served_by))
        if i % 5 == 4:
            cloud.handle_update((3 * i) % len(cloud.corpus), now=float(i))
        if i % 20 == 19:
            cloud.run_cycle(now=float(i))
    return results


def _native_cloud(corpus, scheme: str) -> CacheCloud:
    return make_cloud(corpus, placement=PlacementScheme(scheme))


def _spec_cloud(corpus, scheme: str) -> CacheCloud:
    """Same cloud, composed through the seam from a config whose own
    ``placement`` field names a *different* scheme — proof the injected
    strategy, not the config field, decides behaviour."""
    other = (
        PlacementScheme.AD_HOC
        if scheme == PlacementScheme.UTILITY.value
        else PlacementScheme.UTILITY
    )
    native = make_cloud(corpus, placement=PlacementScheme(scheme))
    config = replace(native.config, placement=other)
    strategy = build_strategy(StrategySpec(scheme=scheme), config)
    return CacheCloud(config, corpus, capture_protocol=True, strategy=strategy)


@pytest.mark.parametrize("scheme", PAPER_SCHEMES)
class TestPaperSchemeEquivalence:
    def test_dispatch_log_message_for_message_identical(
        self, small_corpus, scheme
    ):
        native = _native_cloud(small_corpus, scheme)
        via_spec = _spec_cloud(small_corpus, scheme)
        native_log = native.fabric.capture_dispatches()
        spec_log = via_spec.fabric.capture_dispatches()

        assert _drive(native) == _drive(via_spec)

        assert len(native_log) > 0
        assert native_log == spec_log

    def test_meter_ledger_and_stats_identical(self, small_corpus, scheme):
        native = _native_cloud(small_corpus, scheme)
        via_spec = _spec_cloud(small_corpus, scheme)
        _drive(native)
        _drive(via_spec)

        assert native.transport.meter == via_spec.transport.meter
        assert (
            native.transport.messages_attempted
            == via_spec.transport.messages_attempted
        )
        assert (
            native.transport.bytes_attempted
            == via_spec.transport.bytes_attempted
        )
        assert native.fabric.stats == via_spec.fabric.stats
        native_stats = native.aggregate_stats()
        spec_stats = via_spec.aggregate_stats()
        assert native_stats.stores == spec_stats.stores
        assert native_stats.placement_rejects == spec_stats.placement_rejects
        assert native_stats.local_hits == spec_stats.local_hits
        assert native_stats.cloud_hits == spec_stats.cloud_hits
        assert native_stats.origin_fetches == spec_stats.origin_fetches

    def test_zero_global_rng_draws(self, small_corpus, scheme):
        """Neither composition may touch the shared ``random`` module."""
        random.seed(1234)
        before = random.getstate()
        native = _native_cloud(small_corpus, scheme)
        via_spec = _spec_cloud(small_corpus, scheme)
        _drive(native)
        _drive(via_spec)
        assert random.getstate() == before


class TestSeamComposition:
    def test_spec_cloud_reports_scheme_placement_name(self, small_corpus):
        """The reporting surface follows the injected strategy's policy."""
        for scheme in PAPER_SCHEMES:
            cloud = _spec_cloud(small_corpus, scheme)
            assert cloud.placement.name == scheme

    def test_extended_schemes_diverge_from_paper_schemes(self, small_corpus):
        """The seam is live: a non-paper strategy really changes behaviour."""
        baseline = make_cloud(small_corpus)
        config = replace(baseline.config)
        lce = CacheCloud(
            config,
            small_corpus,
            strategy=build_strategy(StrategySpec(scheme="lce"), config),
        )
        _drive(baseline)
        _drive(lce)
        assert (
            baseline.aggregate_stats().stores != lce.aggregate_stats().stores
        )
