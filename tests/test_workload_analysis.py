"""Unit tests for workload analysis utilities."""

import math
import random

import pytest

from repro.workload.analysis import (
    fit_zipf_alpha,
    gini_coefficient,
    hot_set,
    popularity_counts,
    popularity_drift,
    rate_timeline,
    summarize,
)
from repro.workload.generator import SyntheticTraceGenerator, WorkloadConfig
from repro.workload.sydney import SydneyConfig, SydneyTraceGenerator
from repro.workload.trace import RequestRecord, Trace
from repro.workload.zipf import ZipfSampler


class TestPopularityCounts:
    def test_counts(self):
        requests = [RequestRecord(0.0, 0, 1), RequestRecord(1.0, 0, 1)]
        assert popularity_counts(requests) == {1: 2}

    def test_hot_set_order_and_ties(self):
        requests = [
            RequestRecord(0.0, 0, 5),
            RequestRecord(1.0, 0, 5),
            RequestRecord(2.0, 0, 3),
            RequestRecord(3.0, 0, 9),
        ]
        assert hot_set(requests, 2) == [5, 3]  # tie 3 vs 9 → lower id


class TestFitZipfAlpha:
    def test_requires_enough_items(self):
        with pytest.raises(ValueError):
            fit_zipf_alpha([10, 10])

    def test_uniform_counts_fit_alpha_zero(self):
        assert fit_zipf_alpha([50] * 20) == pytest.approx(0.0, abs=1e-9)

    def test_exact_zipf_counts_recover_alpha(self):
        counts = [int(10_000 / (rank ** 0.9)) for rank in range(1, 200)]
        assert fit_zipf_alpha(counts) == pytest.approx(0.9, abs=0.05)

    @pytest.mark.parametrize("alpha", [0.5, 0.9])
    def test_recovers_alpha_from_samples(self, alpha):
        sampler = ZipfSampler(500, alpha, random.Random(0))
        counts = [0] * 500
        for _ in range(100_000):
            counts[sampler.sample()] += 1
        fitted = fit_zipf_alpha(counts, min_count=5)
        assert fitted == pytest.approx(alpha, abs=0.15)


class TestGini:
    def test_uniform_is_zero(self):
        assert gini_coefficient([5, 5, 5, 5]) == pytest.approx(0.0, abs=1e-9)

    def test_total_concentration_near_one(self):
        assert gini_coefficient([0] * 99 + [1000]) > 0.95

    def test_empty_and_zero(self):
        assert gini_coefficient([]) == 0.0
        assert gini_coefficient([0, 0]) == 0.0

    def test_more_skew_higher_gini(self):
        mild = [int(100 / (r ** 0.3)) for r in range(1, 50)]
        strong = [int(100 / (r ** 1.2)) + 1 for r in range(1, 50)]
        assert gini_coefficient(strong) > gini_coefficient(mild)


class TestDriftAndTimeline:
    def test_drift_requires_positive_window(self):
        with pytest.raises(ValueError):
            popularity_drift(Trace(), window=0.0)

    def test_static_popularity_has_zero_drift(self):
        requests = [
            RequestRecord(float(t), 0, doc)
            for t in range(100)
            for doc in range(5)
        ]
        drift = popularity_drift(Trace(requests=requests), window=20.0, k=5)
        assert all(turnover == 0.0 for _, turnover in drift)

    def test_sydney_trace_shows_drift(self):
        trace = SydneyTraceGenerator(
            SydneyConfig(
                num_documents=400,
                num_caches=4,
                peak_request_rate_per_cache=60.0,
                base_update_rate=5.0,
                duration_minutes=120.0,
                diurnal_period_minutes=120.0,
                num_epochs=4,
                drift_pool=100,
                seed=2,
            )
        ).build_trace()
        drift = popularity_drift(trace, window=30.0, k=20)
        assert any(turnover > 0.2 for _, turnover in drift)

    def test_rate_timeline_shows_diurnal_wave(self):
        trace = SydneyTraceGenerator(
            SydneyConfig(
                num_documents=300,
                num_caches=4,
                peak_request_rate_per_cache=60.0,
                base_update_rate=5.0,
                duration_minutes=60.0,
                diurnal_period_minutes=60.0,
                num_epochs=2,
                drift_pool=50,
                seed=2,
            )
        ).build_trace()
        timeline = rate_timeline(trace, window=10.0)
        rates = [rate for _, rate in timeline]
        peak = max(rates)
        trough = min(rates)
        assert peak > 2.0 * max(trough, 1e-9)

    def test_rate_timeline_empty_trace(self):
        assert rate_timeline(Trace(), window=10.0) == []


class TestSummarize:
    def test_summary_of_zipf_trace(self):
        trace = SyntheticTraceGenerator(
            WorkloadConfig(
                num_documents=400,
                num_caches=4,
                request_rate_per_cache=60.0,
                update_rate=10.0,
                alpha_requests=0.9,
                duration_minutes=60.0,
                seed=1,
            )
        ).build_trace()
        summary = summarize(trace)
        assert summary["requests"] == len(trace.requests)
        assert summary["unique_documents"] <= 400
        assert 0.5 < summary["zipf_alpha"] < 1.3
        assert summary["gini"] > 0.4

    def test_summary_handles_tiny_trace(self):
        trace = Trace(requests=[RequestRecord(0.0, 0, 1)])
        summary = summarize(trace)
        assert math.isnan(summary["zipf_alpha"])
