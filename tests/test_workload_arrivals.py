"""Unit + statistical tests for arrival processes."""

import random

import pytest

from repro.workload.arrivals import (
    MMPPArrivals,
    OnOffArrivals,
    PoissonArrivals,
    index_of_dispersion,
)


class TestPoisson:
    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonArrivals(-1.0)

    def test_zero_rate_is_silent(self):
        assert list(PoissonArrivals(0.0).arrivals(100.0, random.Random(0))) == []

    def test_times_sorted_and_bounded(self):
        times = list(PoissonArrivals(5.0).arrivals(50.0, random.Random(1)))
        assert times == sorted(times)
        assert all(0 <= t < 50.0 for t in times)

    def test_volume_matches_mean_rate(self):
        process = PoissonArrivals(8.0)
        times = list(process.arrivals(500.0, random.Random(2)))
        assert len(times) / 500.0 == pytest.approx(process.mean_rate(), rel=0.1)

    def test_dispersion_near_one(self):
        dispersion = index_of_dispersion(
            PoissonArrivals(10.0), duration=500.0, window=5.0
        )
        assert dispersion == pytest.approx(1.0, abs=0.3)


class TestMMPP:
    def make(self):
        return MMPPArrivals(
            quiet_rate=2.0, burst_rate=40.0, quiet_mean=20.0, burst_mean=2.0
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            MMPPArrivals(-1, 1, 1, 1)
        with pytest.raises(ValueError):
            MMPPArrivals(1, 2, 0, 1)
        with pytest.raises(ValueError):
            MMPPArrivals(5, 2, 1, 1)  # burst slower than quiet

    def test_mean_rate_formula(self):
        process = self.make()
        # (2*20 + 40*2) / 22 = 120/22
        assert process.mean_rate() == pytest.approx(120.0 / 22.0)

    def test_volume_matches_mean_rate(self):
        process = self.make()
        times = list(process.arrivals(2_000.0, random.Random(3)))
        assert len(times) / 2_000.0 == pytest.approx(process.mean_rate(), rel=0.15)

    def test_burstier_than_poisson(self):
        process = self.make()
        bursty = index_of_dispersion(process, duration=2_000.0, window=5.0)
        poisson = index_of_dispersion(
            PoissonArrivals(process.mean_rate()), duration=2_000.0, window=5.0
        )
        assert bursty > 2.0 * poisson

    def test_burstiness_metric(self):
        assert self.make().burstiness() > 5.0

    def test_times_sorted(self):
        times = list(self.make().arrivals(200.0, random.Random(4)))
        assert times == sorted(times)
        assert all(0 <= t < 200.0 for t in times)


class TestOnOff:
    def make(self):
        return OnOffArrivals(on_rate=20.0, on_mean=5.0, off_mean=15.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            OnOffArrivals(-1, 1, 1)
        with pytest.raises(ValueError):
            OnOffArrivals(1, 0, 1)

    def test_mean_rate_is_duty_cycled(self):
        assert self.make().mean_rate() == pytest.approx(20.0 * 5.0 / 20.0)

    def test_volume_matches_mean_rate(self):
        process = self.make()
        times = list(process.arrivals(2_000.0, random.Random(5)))
        assert len(times) / 2_000.0 == pytest.approx(process.mean_rate(), rel=0.15)

    def test_off_periods_create_silence(self):
        # With long OFF periods, some windows must be empty.
        process = OnOffArrivals(on_rate=30.0, on_mean=2.0, off_mean=20.0)
        counts = {}
        for t in process.arrivals(500.0, random.Random(6)):
            counts[int(t / 5.0)] = counts.get(int(t / 5.0), 0) + 1
        assert len(counts) < 100  # far from all 100 windows occupied

    def test_dispersion_above_poisson(self):
        process = self.make()
        assert index_of_dispersion(process, 2_000.0, 5.0) > 2.0


class TestDispersionHelper:
    def test_validation(self):
        with pytest.raises(ValueError):
            index_of_dispersion(PoissonArrivals(1.0), duration=0.0, window=1.0)
        with pytest.raises(ValueError):
            index_of_dispersion(PoissonArrivals(1.0), duration=10.0, window=20.0)

    def test_empty_process(self):
        assert index_of_dispersion(PoissonArrivals(0.0), 100.0, 10.0) == 0.0

    def test_deterministic_given_rng(self):
        a = index_of_dispersion(
            PoissonArrivals(5.0), 100.0, 5.0, rng=random.Random(7)
        )
        b = index_of_dispersion(
            PoissonArrivals(5.0), 100.0, 5.0, rng=random.Random(7)
        )
        assert a == b
