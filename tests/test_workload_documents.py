"""Unit tests for the document corpus model."""

import random

import pytest

from repro.workload.documents import Corpus, DocumentSpec, build_corpus


class TestDocumentSpec:
    def test_rejects_negative_id(self):
        with pytest.raises(ValueError):
            DocumentSpec(doc_id=-1, url="u", size_bytes=10)

    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            DocumentSpec(doc_id=0, url="u", size_bytes=0)

    def test_is_hashable_and_frozen(self):
        doc = DocumentSpec(0, "u", 10)
        assert hash(doc)
        with pytest.raises(AttributeError):
            doc.size_bytes = 20


class TestCorpus:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Corpus([])

    def test_rejects_non_dense_ids(self):
        docs = [DocumentSpec(0, "a", 1), DocumentSpec(2, "b", 1)]
        with pytest.raises(ValueError):
            Corpus(docs)

    def test_rejects_duplicate_urls(self):
        docs = [DocumentSpec(0, "same", 1), DocumentSpec(1, "same", 1)]
        with pytest.raises(ValueError):
            Corpus(docs)

    def test_lookup_by_id_and_url(self):
        docs = [DocumentSpec(0, "a", 5), DocumentSpec(1, "b", 7)]
        corpus = Corpus(docs)
        assert corpus[1].url == "b"
        assert corpus.by_url("a").doc_id == 0

    def test_total_bytes_and_mean(self):
        docs = [DocumentSpec(0, "a", 5), DocumentSpec(1, "b", 7)]
        corpus = Corpus(docs)
        assert corpus.total_bytes == 12
        assert corpus.mean_size() == 6.0

    def test_iteration_in_id_order(self):
        corpus = build_corpus(10, fixed_size=100)
        assert [d.doc_id for d in corpus] == list(range(10))


class TestBuildCorpus:
    def test_rejects_non_positive_count(self):
        with pytest.raises(ValueError):
            build_corpus(0)

    def test_fixed_size(self):
        corpus = build_corpus(10, fixed_size=512)
        assert all(d.size_bytes == 512 for d in corpus)

    def test_fixed_size_must_be_positive(self):
        with pytest.raises(ValueError):
            build_corpus(10, fixed_size=0)

    def test_lognormal_sizes_near_requested_mean(self):
        corpus = build_corpus(5000, random.Random(0), mean_size=8192)
        assert corpus.mean_size() == pytest.approx(8192, rel=0.15)

    def test_sizes_have_floor(self):
        corpus = build_corpus(2000, random.Random(0), mean_size=128, sigma=1.5)
        assert min(d.size_bytes for d in corpus) >= 64

    def test_urls_unique_and_prefixed(self):
        corpus = build_corpus(20, fixed_size=1)
        urls = corpus.urls()
        assert len(set(urls)) == 20
        assert all(u.startswith("http://") for u in urls)

    def test_deterministic_given_rng(self):
        a = build_corpus(50, random.Random(5))
        b = build_corpus(50, random.Random(5))
        assert [d.size_bytes for d in a] == [d.size_bytes for d in b]
