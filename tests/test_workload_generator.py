"""Unit tests for the synthetic (Zipf) trace generator."""

import pytest

from repro.workload.generator import (
    SyntheticTraceGenerator,
    WorkloadConfig,
    poisson_arrivals,
)
import random


class TestWorkloadConfig:
    def test_defaults_are_paper_like(self):
        config = WorkloadConfig()
        assert config.num_documents == 25_000
        assert config.alpha_requests == 0.9
        assert config.effective_alpha_updates == 0.9

    def test_alpha_updates_override(self):
        config = WorkloadConfig(alpha_updates=0.5)
        assert config.effective_alpha_updates == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(num_documents=0)
        with pytest.raises(ValueError):
            WorkloadConfig(num_caches=0)
        with pytest.raises(ValueError):
            WorkloadConfig(request_rate_per_cache=-1)
        with pytest.raises(ValueError):
            WorkloadConfig(duration_minutes=0)

    def test_cache_weights_must_match_cache_count(self):
        with pytest.raises(ValueError):
            WorkloadConfig(num_caches=3, cache_weights=[1.0, 2.0])


class TestPoissonArrivals:
    def test_zero_rate_yields_nothing(self):
        assert list(poisson_arrivals(0.0, 100.0, random.Random(0))) == []

    def test_arrivals_sorted_and_bounded(self):
        times = list(poisson_arrivals(5.0, 50.0, random.Random(1)))
        assert times == sorted(times)
        assert all(0 <= t < 50.0 for t in times)

    def test_mean_rate_approximates_requested(self):
        times = list(poisson_arrivals(10.0, 1000.0, random.Random(2)))
        assert len(times) / 1000.0 == pytest.approx(10.0, rel=0.1)


def small_config(**overrides):
    defaults = dict(
        num_documents=100,
        num_caches=4,
        request_rate_per_cache=20.0,
        update_rate=10.0,
        alpha_requests=0.9,
        duration_minutes=30.0,
        seed=11,
    )
    defaults.update(overrides)
    return WorkloadConfig(**defaults)


class TestSyntheticTraceGenerator:
    def test_trace_reproducible_for_same_seed(self):
        a = SyntheticTraceGenerator(small_config()).build_trace()
        b = SyntheticTraceGenerator(small_config()).build_trace()
        assert a.requests == b.requests
        assert a.updates == b.updates

    def test_different_seed_changes_trace(self):
        a = SyntheticTraceGenerator(small_config(seed=1)).build_trace()
        b = SyntheticTraceGenerator(small_config(seed=2)).build_trace()
        assert a.requests != b.requests

    def test_records_within_bounds(self):
        trace = SyntheticTraceGenerator(small_config()).build_trace()
        config = small_config()
        for record in trace.requests:
            assert 0 <= record.time < config.duration_minutes
            assert 0 <= record.cache_id < config.num_caches
            assert 0 <= record.doc_id < config.num_documents
        for record in trace.updates:
            assert 0 <= record.doc_id < config.num_documents

    def test_request_volume_tracks_rate(self):
        config = small_config(request_rate_per_cache=50.0, duration_minutes=60.0)
        trace = SyntheticTraceGenerator(config).build_trace()
        expected = config.num_caches * 50.0 * 60.0
        assert len(trace.requests) == pytest.approx(expected, rel=0.1)

    def test_popularity_is_skewed(self):
        gen = SyntheticTraceGenerator(small_config(duration_minutes=120.0))
        trace = gen.build_trace()
        counts = trace.request_counts_by_doc()
        hottest_doc = gen.doc_for_rank(0)
        median = sorted(counts.values())[len(counts) // 2]
        assert counts[hottest_doc] > 3 * median

    def test_cache_weights_bias_distribution(self):
        config = small_config(
            cache_weights=[10.0, 1.0, 1.0, 1.0], duration_minutes=60.0
        )
        trace = SyntheticTraceGenerator(config).build_trace()
        per_cache = [0] * 4
        for record in trace.requests:
            per_cache[record.cache_id] += 1
        assert per_cache[0] > 3 * max(per_cache[1:])

    def test_updates_share_popularity_permutation(self):
        gen = SyntheticTraceGenerator(
            small_config(update_rate=100.0, duration_minutes=120.0)
        )
        trace = gen.build_trace()
        counts = trace.update_counts_by_doc()
        hottest_doc = gen.doc_for_rank(0)
        assert counts.get(hottest_doc, 0) >= max(counts.values()) * 0.3


class TestCustomArrivalProcess:
    def test_mmpp_arrivals_plug_in(self):
        from repro.workload.arrivals import MMPPArrivals

        gen = SyntheticTraceGenerator(small_config(duration_minutes=120.0))
        process = MMPPArrivals(
            quiet_rate=10.0, burst_rate=200.0, quiet_mean=20.0, burst_mean=2.0
        )
        records = list(gen.requests(arrival_process=process))
        assert records, "bursty process produced no arrivals"
        times = [r.time for r in records]
        assert times == sorted(times)
        assert all(0 <= t < 120.0 for t in times)
        config = small_config()
        for record in records:
            assert 0 <= record.cache_id < config.num_caches
            assert 0 <= record.doc_id < config.num_documents

    def test_document_popularity_unchanged_under_bursty_arrivals(self):
        from repro.workload.arrivals import MMPPArrivals

        config = small_config(duration_minutes=240.0)
        poisson_gen = SyntheticTraceGenerator(config)
        bursty_gen = SyntheticTraceGenerator(config)
        process = MMPPArrivals(
            quiet_rate=30.0, burst_rate=300.0, quiet_mean=20.0, burst_mean=2.0
        )
        hot_doc = poisson_gen.doc_for_rank(0)
        bursty_counts = {}
        for record in bursty_gen.requests(arrival_process=process):
            bursty_counts[record.doc_id] = bursty_counts.get(record.doc_id, 0) + 1
        # The hottest rank stays near the top regardless of arrival model.
        assert bursty_counts.get(hot_doc, 0) >= 0.5 * max(bursty_counts.values())
