"""Unit + property tests for trace file I/O."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.readers import (
    TraceFormatError,
    read_trace,
    trace_to_string,
    write_trace,
)
from repro.workload.trace import RequestRecord, Trace, UpdateRecord


def sample_trace():
    return Trace(
        requests=[RequestRecord(1.25, 2, 7), RequestRecord(0.5, 0, 3)],
        updates=[UpdateRecord(1.0, 7)],
    )


class TestWriteRead:
    def test_round_trip_via_string(self):
        trace = sample_trace()
        restored = read_trace(io.StringIO(trace_to_string(trace)))
        assert restored.requests == trace.requests
        assert restored.updates == trace.updates

    def test_round_trip_via_file(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "trace.txt"
        count = write_trace(trace, path)
        assert count == 3
        restored = read_trace(path)
        assert restored.requests == trace.requests
        assert restored.updates == trace.updates

    def test_output_is_time_ordered(self):
        text = trace_to_string(sample_trace())
        times = [float(line.split()[1]) for line in text.strip().splitlines()]
        assert times == sorted(times)

    def test_comments_and_blank_lines_ignored(self):
        text = "# a comment\n\nR 1.0 0 5\n# another\nU 2.0 5\n"
        trace = read_trace(io.StringIO(text))
        assert len(trace.requests) == 1
        assert len(trace.updates) == 1


class TestErrors:
    def test_unknown_kind(self):
        with pytest.raises(TraceFormatError):
            read_trace(io.StringIO("X 1.0 2 3\n"))

    def test_wrong_field_count_request(self):
        with pytest.raises(TraceFormatError):
            read_trace(io.StringIO("R 1.0 2\n"))

    def test_wrong_field_count_update(self):
        with pytest.raises(TraceFormatError):
            read_trace(io.StringIO("U 1.0 2 3\n"))

    def test_unparsable_number(self):
        with pytest.raises(TraceFormatError):
            read_trace(io.StringIO("R abc 0 0\n"))

    def test_error_mentions_line_number(self):
        with pytest.raises(TraceFormatError, match="line 2"):
            read_trace(io.StringIO("R 1.0 0 0\nBOGUS\n"))


times = st.floats(min_value=0, max_value=1e6, allow_nan=False)


@given(
    requests=st.lists(
        st.tuples(times, st.integers(0, 99), st.integers(0, 9999)), max_size=30
    ),
    updates=st.lists(st.tuples(times, st.integers(0, 9999)), max_size=30),
)
@settings(max_examples=50, deadline=None)
def test_round_trip_property(requests, updates):
    trace = Trace(
        requests=[RequestRecord(t, c, d) for t, c, d in requests],
        updates=[UpdateRecord(t, d) for t, d in updates],
    )
    restored = read_trace(io.StringIO(trace_to_string(trace)))
    # Timestamps survive at the serialized precision (6 decimal places);
    # records whose times collide at that precision may re-sort, so compare
    # as multisets of rounded records.
    def key_req(r):
        return (round(r.time, 6), r.cache_id, r.doc_id)

    def key_upd(u):
        return (round(u.time, 6), u.doc_id)

    assert sorted(map(key_req, restored.requests)) == sorted(
        map(key_req, trace.requests)
    )
    assert sorted(map(key_upd, restored.updates)) == sorted(
        map(key_upd, trace.updates)
    )
