"""Streaming workload path: lazy trace generation, value-identical and O(window).

The out-of-core run path (``ExperimentSpec(streaming=True)``) replaces the
materialized :class:`~repro.workload.trace.Trace` with lazy
``requests()`` / ``updates()`` iterators merged on the fly. These tests pin
its two contracts:

* **value identity** — the streamed records are exactly what
  ``build_trace()`` would list out, record for record, for both generator
  families, and a streamed experiment fingerprints identically to a
  materialized one; and
* **bounded memory** — replaying a million-request trace through the
  iterator path keeps peak resident trace state O(window) (merge
  lookahead + distinct-doc tally), not O(requests).
"""

from __future__ import annotations

import tracemalloc

import pytest

from repro.experiments.parallel import (
    ExperimentSpec,
    WorkloadSpec,
    run_spec,
)
from repro.experiments.reporting import fingerprint
from repro.core.config import AssignmentScheme, CloudConfig, PlacementScheme
from repro.workload.generator import SyntheticTraceGenerator, WorkloadConfig
from repro.workload.sydney import SydneyConfig, SydneyTraceGenerator
from repro.workload.trace import RequestStreamStats, merge_streams


def _zipf_config(**overrides) -> WorkloadConfig:
    base = dict(
        num_documents=80,
        num_caches=4,
        request_rate_per_cache=40.0,
        update_rate=15.0,
        duration_minutes=8.0,
        seed=11,
    )
    base.update(overrides)
    return WorkloadConfig(**base)


def _zipf_spec(streaming: bool) -> ExperimentSpec:
    workload = WorkloadSpec(
        generator_config=_zipf_config(),
        corpus_documents=80,
        corpus_seed=11,
    )
    config = CloudConfig(
        num_caches=4,
        num_rings=2,
        intra_gen=100,
        cycle_length=5.0,
        assignment=AssignmentScheme.DYNAMIC,
        placement=PlacementScheme.UTILITY,
        seed=11,
    )
    return ExperimentSpec(
        key=f"streaming={streaming}",
        config=config,
        workload=workload,
        duration=8.0,
        warmup=0.0,
        streaming=streaming,
    )


class TestStreamValueIdentity:
    def test_synthetic_streams_equal_built_trace(self):
        config = _zipf_config()
        trace = SyntheticTraceGenerator(config).build_trace()
        fresh = SyntheticTraceGenerator(config)
        assert list(fresh.requests()) == trace.requests
        assert list(fresh.updates()) == trace.updates

    def test_sydney_streams_equal_built_trace(self):
        config = SydneyConfig(num_caches=4, duration_minutes=5.0, seed=9)
        trace = SydneyTraceGenerator(config).build_trace()
        fresh = SydneyTraceGenerator(config)
        assert list(fresh.requests()) == trace.requests
        assert list(fresh.updates()) == trace.updates

    def test_build_generator_matches_config_type(self):
        zipf = WorkloadSpec(
            generator_config=_zipf_config(), corpus_documents=80, corpus_seed=1
        )
        sydney = WorkloadSpec(
            generator_config=SydneyConfig(num_caches=4, duration_minutes=1.0),
            corpus_documents=80,
            corpus_seed=1,
        )
        assert isinstance(zipf.build_generator(), SyntheticTraceGenerator)
        assert isinstance(sydney.build_generator(), SydneyTraceGenerator)

    def test_request_stream_stats_passthrough(self):
        config = _zipf_config()
        trace = SyntheticTraceGenerator(config).build_trace()
        counter = RequestStreamStats(SyntheticTraceGenerator(config).requests())
        assert list(counter) == trace.requests
        assert counter.records == len(trace.requests)
        assert counter.unique_docs == len(trace.request_counts_by_doc())


class TestStreamingRunPath:
    def test_streaming_experiment_fingerprints_like_materialized(self):
        streamed = run_spec(_zipf_spec(streaming=True))
        materialized = run_spec(_zipf_spec(streaming=False))
        # Keys differ by construction; everything that describes the run
        # must not.
        assert streamed.stats == materialized.stats
        assert streamed.unique_request_docs == materialized.unique_request_docs
        assert fingerprint(streamed) == fingerprint(materialized)


#: Peak resident bound for the million-request replay. A materialized
#: million-record trace is ~100+ MB of RequestRecord objects; the iterator
#: path's window (heapq lookahead + distinct-doc set + generator state)
#: stays comfortably under this.
MEMORY_BUDGET_BYTES = 16 * 1024 * 1024


@pytest.mark.slow
class TestStreamingMemoryGuard:
    def test_million_request_replay_is_out_of_core(self):
        # 50 caches x 200 req/min x 100 min = one million offered requests.
        config = _zipf_config(
            num_documents=2_000,
            num_caches=50,
            request_rate_per_cache=200.0,
            update_rate=50.0,
            duration_minutes=100.0,
        )
        generator = SyntheticTraceGenerator(config)
        counter = RequestStreamStats(generator.requests())
        stream = merge_streams(counter, generator.updates())

        tracemalloc.start()
        tracemalloc.reset_peak()
        drained = 0
        last_time = -1.0
        for record in stream:
            drained += 1
            assert record.time >= last_time  # merged in global time order
            last_time = record.time
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        assert counter.records > 900_000  # Poisson noise around one million
        assert drained > counter.records  # updates were interleaved too
        assert counter.unique_docs <= config.num_documents
        assert peak < MEMORY_BUDGET_BYTES, (
            f"streaming replay peaked at {peak / 2**20:.1f} MiB; "
            f"trace state is not O(window)"
        )
