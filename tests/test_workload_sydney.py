"""Unit tests for the Sydney-like trace generator."""

import pytest

from repro.workload.sydney import SydneyConfig, SydneyTraceGenerator


def small_config(**overrides):
    defaults = dict(
        num_documents=400,
        num_caches=5,
        peak_request_rate_per_cache=40.0,
        base_update_rate=20.0,
        duration_minutes=120.0,
        diurnal_period_minutes=120.0,
        num_epochs=4,
        drift_pool=100,
        seed=3,
    )
    defaults.update(overrides)
    return SydneyConfig(**defaults)


class TestSydneyConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            small_config(num_documents=0)
        with pytest.raises(ValueError):
            small_config(diurnal_floor=0.0)
        with pytest.raises(ValueError):
            small_config(diurnal_period_minutes=0.0)
        with pytest.raises(ValueError):
            small_config(live_fraction=0.0)
        with pytest.raises(ValueError):
            small_config(live_update_share=1.5)
        with pytest.raises(ValueError):
            small_config(drift_pool=10_000)

    def test_defaults_match_paper_trace_shape(self):
        config = SydneyConfig()
        assert config.num_documents == 52_000
        assert config.duration_minutes == 1440.0


class TestDiurnalEnvelope:
    def test_trough_at_start_and_peak_mid_period(self):
        gen = SydneyTraceGenerator(small_config())
        assert gen.diurnal_factor(0.0) == pytest.approx(0.25)
        assert gen.diurnal_factor(60.0) == pytest.approx(1.0)

    def test_factor_bounded(self):
        gen = SydneyTraceGenerator(small_config())
        for t in range(0, 120, 7):
            assert 0.25 <= gen.diurnal_factor(float(t)) <= 1.0


class TestEpochs:
    def test_epoch_index_progression(self):
        gen = SydneyTraceGenerator(small_config())
        assert gen.epoch_at(0.0) == 0
        assert gen.epoch_at(119.9) == 3
        assert gen.epoch_at(30.0) == 1

    def test_epoch_at_clamps_to_last(self):
        gen = SydneyTraceGenerator(small_config())
        assert gen.epoch_at(1e9) == 3

    def test_hot_set_rotates_between_epochs(self):
        gen = SydneyTraceGenerator(small_config())
        head0 = gen._epoch_maps[0][:20]
        head1 = gen._epoch_maps[1][:20]
        assert head0 != head1  # drift actually happened

    def test_tail_is_stable_across_epochs(self):
        gen = SydneyTraceGenerator(small_config())
        tail0 = gen._epoch_maps[0][100:]
        tail1 = gen._epoch_maps[1][100:]
        assert tail0 == tail1  # only the drift pool reshuffles


class TestTraceGeneration:
    def test_reproducible(self):
        a = SydneyTraceGenerator(small_config()).build_trace()
        b = SydneyTraceGenerator(small_config()).build_trace()
        assert a.requests == b.requests
        assert a.updates == b.updates

    def test_records_within_bounds(self):
        config = small_config()
        trace = SydneyTraceGenerator(config).build_trace()
        for record in trace.requests:
            assert 0 <= record.time < config.duration_minutes
            assert 0 <= record.cache_id < config.num_caches
            assert 0 <= record.doc_id < config.num_documents

    def test_diurnal_modulation_visible_in_volume(self):
        config = small_config()
        trace = SydneyTraceGenerator(config).build_trace()
        trough = sum(1 for r in trace.requests if r.time < 20.0)
        peak = sum(1 for r in trace.requests if 50.0 <= r.time < 70.0)
        assert peak > 1.5 * trough

    def test_updates_concentrate_on_live_set(self):
        config = small_config(base_update_rate=60.0)
        gen = SydneyTraceGenerator(config)
        trace = gen.build_trace()
        live = set(gen.live_documents)
        live_updates = sum(1 for u in trace.updates if u.doc_id in live)
        assert live_updates / len(trace.updates) > 0.75

    def test_live_set_size(self):
        config = small_config(live_fraction=0.05)
        gen = SydneyTraceGenerator(config)
        assert len(gen.live_documents) == 20

    def test_update_volume_tracks_rate(self):
        config = small_config(base_update_rate=30.0)
        trace = SydneyTraceGenerator(config).build_trace()
        assert len(trace.updates) == pytest.approx(30.0 * 120.0, rel=0.15)


class TestFlashVolumeBoost:
    def test_boost_below_one_rejected(self):
        with pytest.raises(ValueError):
            small_config(flash_rate_boost=0.5)

    def test_flash_times_outside_duration_rejected(self):
        with pytest.raises(ValueError):
            small_config(flash_times=(130.0,))
        with pytest.raises(ValueError):
            small_config(flash_times=(-1.0,))

    def test_flash_times_pin_the_windows(self):
        config = small_config(
            flash_times=(10.0, 60.0), flash_duration_minutes=5.0
        )
        gen = SydneyTraceGenerator(config)
        assert gen.flash_windows == [(10.0, 15.0), (60.0, 65.0)]

    def test_unit_boost_reproduces_the_legacy_draw_sequence(self):
        # flash_rate_boost=1.0 must be byte-identical to a config that
        # predates the knob — same arrivals, same thinning, same docs.
        legacy = SydneyTraceGenerator(small_config()).build_trace()
        unit = SydneyTraceGenerator(
            small_config(flash_rate_boost=1.0)
        ).build_trace()
        assert unit.requests == legacy.requests
        assert unit.updates == legacy.updates

    def test_boost_amplifies_volume_inside_windows_only(self):
        base_cfg = small_config(
            flash_times=(55.0,), flash_duration_minutes=10.0
        )
        boost_cfg = small_config(
            flash_times=(55.0,),
            flash_duration_minutes=10.0,
            flash_rate_boost=3.0,
        )
        base = SydneyTraceGenerator(base_cfg).build_trace()
        boosted = SydneyTraceGenerator(boost_cfg).build_trace()

        def split(trace):
            inside = sum(1 for r in trace.requests if 55.0 <= r.time < 65.0)
            return inside, len(trace.requests) - inside

        base_in, base_out = split(base)
        boost_in, boost_out = split(boosted)
        # ~3x the realized rate inside the window (the envelope was already
        # near the diurnal peak there, so the cap barely binds)...
        assert boost_in > 2.0 * base_in
        # ...and statistically unchanged volume outside it.
        assert boost_out == pytest.approx(base_out, rel=0.1)
