"""Unit + property tests for trace records and stream merging."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.trace import (
    RequestRecord,
    Trace,
    UpdateRecord,
    merge_streams,
)


class TestRecords:
    def test_request_record_validation(self):
        with pytest.raises(ValueError):
            RequestRecord(time=-1.0, cache_id=0, doc_id=0)
        with pytest.raises(ValueError):
            RequestRecord(time=0.0, cache_id=-1, doc_id=0)
        with pytest.raises(ValueError):
            RequestRecord(time=0.0, cache_id=0, doc_id=-1)

    def test_update_record_validation(self):
        with pytest.raises(ValueError):
            UpdateRecord(time=-0.5, doc_id=0)

    def test_records_sort_by_time(self):
        records = [RequestRecord(2.0, 0, 0), RequestRecord(1.0, 1, 1)]
        assert sorted(records)[0].time == 1.0


class TestTrace:
    def test_sorts_inputs(self):
        trace = Trace(
            requests=[RequestRecord(5.0, 0, 0), RequestRecord(1.0, 0, 1)],
            updates=[UpdateRecord(3.0, 2), UpdateRecord(0.5, 3)],
        )
        assert [r.time for r in trace.requests] == [1.0, 5.0]
        assert [u.time for u in trace.updates] == [0.5, 3.0]

    def test_duration(self):
        trace = Trace(
            requests=[RequestRecord(5.0, 0, 0)], updates=[UpdateRecord(9.0, 1)]
        )
        assert trace.duration == 9.0

    def test_empty_trace_duration_zero(self):
        assert Trace().duration == 0.0

    def test_len_counts_both_kinds(self):
        trace = Trace(
            requests=[RequestRecord(1.0, 0, 0)],
            updates=[UpdateRecord(2.0, 0), UpdateRecord(3.0, 1)],
        )
        assert len(trace) == 3

    def test_histograms(self):
        trace = Trace(
            requests=[RequestRecord(1.0, 0, 7), RequestRecord(2.0, 1, 7)],
            updates=[UpdateRecord(1.5, 7)],
        )
        assert trace.request_counts_by_doc() == {7: 2}
        assert trace.update_counts_by_doc() == {7: 1}


class TestMergeStreams:
    def test_global_time_order(self):
        requests = [RequestRecord(1.0, 0, 0), RequestRecord(3.0, 0, 0)]
        updates = [UpdateRecord(2.0, 0)]
        times = [r.time for r in merge_streams(requests, updates)]
        assert times == [1.0, 2.0, 3.0]

    def test_update_wins_time_tie(self):
        requests = [RequestRecord(1.0, 0, 0)]
        updates = [UpdateRecord(1.0, 0)]
        merged = list(merge_streams(requests, updates))
        assert isinstance(merged[0], UpdateRecord)

    def test_lazy_merge_accepts_generators(self):
        def reqs():
            yield RequestRecord(1.0, 0, 0)

        def upds():
            yield UpdateRecord(0.5, 0)

        merged = merge_streams(reqs(), upds())
        assert [type(r).__name__ for r in merged] == [
            "UpdateRecord",
            "RequestRecord",
        ]

    @given(
        req_times=st.lists(
            st.floats(min_value=0, max_value=100, allow_nan=False), max_size=40
        ),
        upd_times=st.lists(
            st.floats(min_value=0, max_value=100, allow_nan=False), max_size=40
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_merge_is_sorted_and_complete(self, req_times, upd_times):
        requests = sorted(RequestRecord(t, 0, 0) for t in req_times)
        updates = sorted(UpdateRecord(t, 0) for t in upd_times)
        merged = list(merge_streams(requests, updates))
        assert len(merged) == len(requests) + len(updates)
        times = [record.time for record in merged]
        assert times == sorted(times)
