"""Unit + property tests for trace transformations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.trace import RequestRecord, Trace, UpdateRecord
from repro.workload.transforms import (
    clip,
    concatenate,
    filter_documents,
    overlay,
    remap_caches,
    restrict_caches,
    sample_requests,
    scale_time,
    shift,
)


def sample_trace():
    return Trace(
        requests=[
            RequestRecord(1.0, 0, 10),
            RequestRecord(2.0, 1, 11),
            RequestRecord(5.0, 0, 10),
        ],
        updates=[UpdateRecord(3.0, 10)],
    )


class TestShift:
    def test_shifts_all_records(self):
        shifted = shift(sample_trace(), 10.0)
        assert [r.time for r in shifted.requests] == [11.0, 12.0, 15.0]
        assert shifted.updates[0].time == 13.0

    def test_negative_shift_into_negative_times_rejected(self):
        with pytest.raises(ValueError):
            shift(sample_trace(), -2.0)

    def test_valid_negative_shift(self):
        shifted = shift(sample_trace(), -1.0)
        assert shifted.requests[0].time == 0.0


class TestScaleTime:
    def test_compresses(self):
        scaled = scale_time(sample_trace(), 0.5)
        assert [r.time for r in scaled.requests] == [0.5, 1.0, 2.5]

    def test_rejects_non_positive_factor(self):
        with pytest.raises(ValueError):
            scale_time(sample_trace(), 0.0)


class TestClip:
    def test_half_open_window_rebased(self):
        clipped = clip(sample_trace(), 2.0, 5.0)
        assert [r.time for r in clipped.requests] == [0.0]
        assert [u.time for u in clipped.updates] == [1.0]

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            clip(sample_trace(), 5.0, 5.0)


class TestCompose:
    def test_concatenate_sequences_in_time(self):
        trace = sample_trace()
        joined = concatenate([trace, trace])
        assert len(joined) == 2 * len(trace)
        # Second copy starts after the first copy's duration (5.0).
        assert joined.requests[3].time == pytest.approx(6.0)

    def test_concatenate_requires_input(self):
        with pytest.raises(ValueError):
            concatenate([])

    def test_overlay_preserves_timeline(self):
        joined = overlay([sample_trace(), shift(sample_trace(), 0.5)])
        assert len(joined) == 2 * len(sample_trace())
        times = [r.time for r in joined.requests]
        assert times == sorted(times)


class TestFilters:
    def test_filter_documents(self):
        filtered = filter_documents(sample_trace(), lambda d: d == 10)
        assert all(r.doc_id == 10 for r in filtered.requests)
        assert len(filtered.requests) == 2
        assert len(filtered.updates) == 1

    def test_restrict_caches_keeps_updates(self):
        restricted = restrict_caches(sample_trace(), [0])
        assert {r.cache_id for r in restricted.requests} == {0}
        assert len(restricted.updates) == 1

    def test_restrict_needs_caches(self):
        with pytest.raises(ValueError):
            restrict_caches(sample_trace(), [])

    def test_remap_caches(self):
        remapped = remap_caches(sample_trace(), {0: 5, 1: 6})
        assert {r.cache_id for r in remapped.requests} == {5, 6}

    def test_remap_missing_mapping_raises(self):
        with pytest.raises(KeyError):
            remap_caches(sample_trace(), {0: 5})

    def test_sample_requests_keeps_updates(self):
        sampled = sample_requests(sample_trace(), 2)
        assert len(sampled.requests) == 2  # indices 0 and 2
        assert len(sampled.updates) == 1

    def test_sample_validation(self):
        with pytest.raises(ValueError):
            sample_requests(sample_trace(), 0)


times = st.floats(min_value=0, max_value=1e4, allow_nan=False)


@given(
    req_times=st.lists(times, max_size=30),
    offset=st.floats(min_value=0, max_value=100),
    factor=st.floats(min_value=0.1, max_value=10),
)
@settings(max_examples=60, deadline=None)
def test_transforms_preserve_record_counts_and_order(req_times, offset, factor):
    trace = Trace(requests=[RequestRecord(t, 0, 0) for t in req_times])
    for transformed in (shift(trace, offset), scale_time(trace, factor)):
        assert len(transformed.requests) == len(trace.requests)
        out_times = [r.time for r in transformed.requests]
        assert out_times == sorted(out_times)
