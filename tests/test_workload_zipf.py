"""Unit + property tests for the Zipf sampler."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.zipf import (
    ZipfSampler,
    permuted_ranks,
    weights_from_counts,
    zipf_weights,
)


class TestZipfWeights:
    def test_alpha_zero_is_uniform(self):
        assert zipf_weights(5, 0.0) == [1.0] * 5

    def test_weights_decrease_with_rank(self):
        weights = zipf_weights(10, 0.9)
        assert all(a > b for a, b in zip(weights, weights[1:]))

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 0.9)

    def test_rejects_negative_alpha(self):
        with pytest.raises(ValueError):
            zipf_weights(5, -0.1)


class TestZipfSampler:
    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(100, 0.9)
        total = sum(sampler.probability(r) for r in range(100))
        assert total == pytest.approx(1.0)

    def test_probability_out_of_range(self):
        sampler = ZipfSampler(10, 0.9)
        with pytest.raises(IndexError):
            sampler.probability(10)

    def test_rank0_is_hottest(self):
        sampler = ZipfSampler(100, 0.9)
        assert sampler.probability(0) > sampler.probability(1)

    def test_sampling_is_deterministic_with_seeded_rng(self):
        a = ZipfSampler(50, 0.9, random.Random(3)).sample_many(20)
        b = ZipfSampler(50, 0.9, random.Random(3)).sample_many(20)
        assert a == b

    def test_empirical_skew_matches_theory(self):
        sampler = ZipfSampler(20, 0.9, random.Random(0))
        draws = sampler.sample_many(20_000)
        freq0 = draws.count(0) / len(draws)
        assert freq0 == pytest.approx(sampler.probability(0), rel=0.1)

    def test_expected_counts(self):
        sampler = ZipfSampler(4, 0.0)
        assert sampler.expected_counts(100) == pytest.approx([25.0] * 4)

    def test_sample_many_rejects_negative(self):
        with pytest.raises(ValueError):
            ZipfSampler(5, 0.5).sample_many(-1)

    @given(
        n=st.integers(min_value=1, max_value=500),
        alpha=st.floats(min_value=0.0, max_value=2.0),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=60, deadline=None)
    def test_samples_always_in_range(self, n, alpha, seed):
        sampler = ZipfSampler(n, alpha, random.Random(seed))
        for _ in range(50):
            assert 0 <= sampler.sample() < n

    @given(
        n=st.integers(min_value=2, max_value=200),
        alpha=st.floats(min_value=0.0, max_value=1.5),
    )
    @settings(max_examples=40, deadline=None)
    def test_probability_monotone_nonincreasing(self, n, alpha):
        sampler = ZipfSampler(n, alpha)
        probs = [sampler.probability(r) for r in range(n)]
        assert all(a >= b - 1e-12 for a, b in zip(probs, probs[1:]))


class TestHelpers:
    def test_permuted_ranks_is_a_bijection(self):
        perm = permuted_ranks(100, random.Random(1))
        assert sorted(perm) == list(range(100))

    def test_weights_from_counts_normalizes(self):
        assert weights_from_counts([1, 3]) == [0.25, 0.75]

    def test_weights_from_counts_rejects_zero_total(self):
        with pytest.raises(ValueError):
            weights_from_counts([0, 0])
